package translate

import "tilevm/internal/x86"

// Condition-code liveness. Each guest instruction is annotated with the
// set of EFLAGS bits that may be observed after it executes; the
// lowerer materializes only those bits into the packed flags register.
//
// Within a block the analysis is an exact backward pass. At block exits
// the analysis follows the known successors forward (direct branches
// and fallthroughs) until every arithmetic flag has been defined or
// used, a bounded depth is reached, or control becomes indirect —
// unresolved flags are conservatively live. This reproduces the paper's
// "extensive dead flag elimination" soundly: decoding is deterministic,
// so a flag proven dead on every successor path really is dead.

// flagEffects returns the flag bits an instruction uses and the bits it
// must define (writes on every execution). Flags that are only
// conditionally written (shift-by-CL with a possibly-zero count) are
// reported as used so they stay live through the instruction.
func flagEffects(in *x86.Inst) (use, def uint32) {
	switch in.Op {
	case x86.ADD, x86.SUB, x86.CMP, x86.NEG, x86.TEST,
		x86.AND, x86.OR, x86.XOR:
		return 0, x86.FlagsArith
	case x86.ADC, x86.SBB:
		return x86.FlagCF, x86.FlagsArith
	case x86.INC, x86.DEC:
		return 0, x86.FlagsArith &^ x86.FlagCF
	case x86.SHL, x86.SHR, x86.SAR:
		if in.Src.Kind == x86.KImm {
			if in.Src.Imm&31 == 0 {
				return 0, 0
			}
			return 0, x86.FlagsArith
		}
		// Count in CL: a zero count preserves the old flags.
		return x86.FlagsArith, 0
	case x86.ROL, x86.ROR:
		if in.Src.Kind == x86.KImm {
			if in.Src.Imm&31 == 0 {
				return 0, 0
			}
			return 0, x86.FlagCF | x86.FlagOF
		}
		return x86.FlagCF | x86.FlagOF, 0
	case x86.RCL, x86.RCR:
		// Rotate through carry both uses and (conditionally) defines CF.
		return x86.FlagCF | x86.FlagOF, 0
	case x86.SHLD, x86.SHRD:
		// Only an unconditional definition for 32-bit immediate counts;
		// 16-bit forms can reduce to a zero effective count.
		if in.Src2.Kind == x86.KImm && in.Src2.Imm&31 != 0 && in.Dst.Size == 4 {
			return 0, x86.FlagsArith
		}
		return x86.FlagsArith, 0
	case x86.BT:
		return 0, x86.FlagCF
	case x86.BTS, x86.BTR, x86.BTC:
		return 0, x86.FlagCF
	case x86.BSF, x86.BSR:
		return 0, x86.FlagsArith
	case x86.CMPXCHG, x86.XADD:
		return 0, x86.FlagsArith
	case x86.MUL, x86.IMUL, x86.IMUL2:
		return 0, x86.FlagsArith
	case x86.DIV, x86.IDIV:
		return 0, 0
	case x86.JCC, x86.SETCC, x86.CMOVCC:
		return in.Cond.FlagsUsed(), 0
	case x86.CLC, x86.STC:
		return 0, x86.FlagCF
	case x86.CMC:
		return x86.FlagCF, x86.FlagCF
	case x86.CLD, x86.STD:
		return 0, x86.FlagDF
	case x86.SAHF:
		return 0, x86.FlagSF | x86.FlagZF | x86.FlagAF | x86.FlagPF | x86.FlagCF
	case x86.LAHF:
		return x86.FlagSF | x86.FlagZF | x86.FlagAF | x86.FlagPF | x86.FlagCF, 0
	case x86.MOVS, x86.STOS, x86.LODS:
		return x86.FlagDF, 0
	case x86.SCAS, x86.CMPS:
		return x86.FlagDF, x86.FlagsArith
	}
	return 0, 0
}

// lookaheadDepth bounds the cross-block liveness scan.
const lookaheadDepth = 24

// flagsLiveAt computes which arithmetic flags may be observed starting
// at guest address addr, scanning forward up to depth instructions.
// Unresolvable control flow leaves the remaining undetermined flags
// live.
func flagsLiveAt(mem CodeReader, addr uint32, unknown uint32, depth int) uint32 {
	live := uint32(0)
	for depth > 0 && unknown != 0 {
		window := mem.CodeWindow(addr, x86.MaxInstLen+4)
		in, err := x86.Decode(window, addr)
		if err != nil {
			return live | unknown
		}
		use, def := flagEffects(&in)
		live |= use & unknown
		unknown &^= use | def
		if unknown == 0 {
			return live
		}
		depth--
		switch in.Op {
		case x86.JMP:
			addr = in.BranchTarget()
		case x86.JCC:
			// Both paths may execute: a flag is live if live on either.
			taken := flagsLiveAt(mem, in.BranchTarget(), unknown, depth/2)
			fall := flagsLiveAt(mem, in.Next(), unknown, depth/2)
			return live | taken | fall
		case x86.CALL, x86.CALLIND, x86.RET, x86.JMPIND, x86.INT, x86.HLT:
			// Unknown continuation: remaining flags stay live.
			return live | unknown
		default:
			addr = in.Next()
		}
	}
	return live | unknown
}

// flagLiveness annotates each instruction of a block with the flag bits
// live immediately after it (i.e. the bits its lowering must
// materialize if it defines them).
func flagLiveness(insts []x86.Inst, mem CodeReader, conservative bool) []uint32 {
	n := len(insts)
	live := make([]uint32, n)

	// Liveness at the block exit.
	exitLive := x86.FlagsArith | x86.FlagDF
	if !conservative {
		last := &insts[n-1]
		switch {
		case !last.EndsBlock():
			// Size-capped block: the successor is the next instruction.
			exitLive = flagsLiveAt(mem, last.Next(), x86.FlagsArith, lookaheadDepth) | x86.FlagDF
		case last.Op == x86.JMP || last.Op == x86.CALL:
			exitLive = flagsLiveAt(mem, last.BranchTarget(), x86.FlagsArith, lookaheadDepth) | x86.FlagDF
		case last.Op == x86.JCC:
			t := flagsLiveAt(mem, last.BranchTarget(), x86.FlagsArith, lookaheadDepth)
			f := flagsLiveAt(mem, last.Next(), x86.FlagsArith, lookaheadDepth)
			exitLive = t | f | x86.FlagDF
		case last.Op == x86.INT:
			exitLive = flagsLiveAt(mem, last.Next(), x86.FlagsArith, lookaheadDepth) | x86.FlagDF
			// RET / indirect jumps stay conservative.
		}
	}

	cur := exitLive
	for i := n - 1; i >= 0; i-- {
		live[i] = cur
		use, def := flagEffects(&insts[i])
		cur = (cur &^ def) | use
	}
	return live
}
