package translate

import (
	"math/rand"
	"testing"

	"tilevm/internal/guest"
)

// TestTranslateGarbageNeverPanics points the full translation pipeline
// at random bytes — the situation a speculative translator is in when
// it follows a mispredicted path into data. Every call must return a
// block or an error; blocks must be structurally valid.
func TestTranslateGarbageNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	mem := guest.NewMemory()
	base := uint32(0x100000)
	junk := make([]byte, 4096)
	for i := range junk {
		junk[i] = byte(r.Intn(256))
	}
	mem.WriteBytes(base, junk)

	for _, opts := range []Options{{}, {Optimize: true}, {ConservativeFlags: true}} {
		tr := New(opts)
		for off := uint32(0); off < 1024; off++ {
			res, err := tr.TranslateFinal(mem, base+off)
			if err != nil {
				continue
			}
			if len(res.Code) == 0 || res.NumGuest == 0 {
				t.Fatalf("offset %d: empty block accepted", off)
			}
			if !res.Code[len(res.Code)-1].IsBlockEnd() {
				t.Fatalf("offset %d: block not exit-terminated", off)
			}
		}
	}
}

// TestTranslateZeroBytes: a run of zeros decodes as `add [eax], al`
// chains — the classic data-as-code case. Must translate or fail
// cleanly at every option level.
func TestTranslateZeroBytes(t *testing.T) {
	mem := guest.NewMemory()
	tr := New(Options{Optimize: true})
	res, err := tr.TranslateFinal(mem, 0x5000)
	if err != nil {
		t.Fatalf("zeros failed to translate: %v", err)
	}
	if res.NumGuest == 0 {
		t.Fatal("no instructions from zero bytes")
	}
}

// TestDiscoverBlockStopsAtGarbage verifies a decodable prefix followed
// by junk ends the block before the junk rather than failing the whole
// translation.
func TestDiscoverBlockStopsAtGarbage(t *testing.T) {
	mem := guest.NewMemory()
	base := uint32(0x2000)
	// inc eax; inc eax; 0x0F 0x05 (unsupported)
	mem.WriteBytes(base, []byte{0x40, 0x40, 0x0F, 0x05})
	insts, err := DiscoverBlock(mem, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("got %d insts, want 2", len(insts))
	}
	// But starting AT the junk must error.
	if _, err := DiscoverBlock(mem, base+2); err == nil {
		t.Error("junk start accepted")
	}
}
