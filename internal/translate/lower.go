package translate

import (
	"fmt"

	"tilevm/internal/ir"
	"tilevm/internal/rawisa"
	"tilevm/internal/x86"
)

// hostReg maps a 32-bit guest register to its pinned host register.
func hostReg(r x86.Reg) uint8 { return uint8(r&7) + rawisa.RegEAX }

// lowerer translates one guest basic block to IR.
type lowerer struct {
	bl     *ir.Builder
	kind   ExitKind
	target uint32
	fall   uint32
	back   bool
	ended  bool
}

func newLowerer(addr uint32) *lowerer {
	return &lowerer{bl: ir.NewBuilder(addr)}
}

func (lo *lowerer) finish(guestLen uint32, numGuest int) (*Block, error) {
	b, err := lo.bl.Finish(guestLen, numGuest)
	if err != nil {
		return nil, err
	}
	return &Block{
		Block:         b,
		Kind:          lo.kind,
		Target:        lo.target,
		FallTarget:    lo.fall,
		BackwardTaken: lo.back,
	}, nil
}

// endEarly chains to the given address when the block is cut short.
func (lo *lowerer) endEarly(next uint32) {
	lo.bl.Chain(next)
	lo.kind, lo.target, lo.ended = ExitFall, next, true
}

// computeEA materializes a memory operand's effective address.
func (lo *lowerer) computeEA(o x86.Operand) uint8 {
	bl := lo.bl
	ea := bl.VReg()
	switch {
	case o.Base != x86.NoIndex && o.Index != x86.NoIndex:
		idx := hostReg(x86.Reg(o.Index))
		if o.Scale > 1 {
			bl.OpI(rawisa.SLLI, ea, idx, int32(log2u8(o.Scale)))
			bl.Op3(rawisa.ADD, ea, ea, hostReg(x86.Reg(o.Base)))
		} else {
			bl.Op3(rawisa.ADD, ea, hostReg(x86.Reg(o.Base)), idx)
		}
		if o.Disp != 0 {
			bl.AddImm(ea, ea, o.Disp)
		}
	case o.Base != x86.NoIndex:
		bl.AddImm(ea, hostReg(x86.Reg(o.Base)), o.Disp)
	case o.Index != x86.NoIndex:
		idx := hostReg(x86.Reg(o.Index))
		if o.Scale > 1 {
			bl.OpI(rawisa.SLLI, ea, idx, int32(log2u8(o.Scale)))
		} else {
			bl.Move(ea, idx)
		}
		if o.Disp != 0 {
			bl.AddImm(ea, ea, o.Disp)
		}
	default:
		bl.LoadImm(ea, uint32(o.Disp))
	}
	return ea
}

func log2u8(v uint8) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// readReg8 extracts an 8-bit register value (AL..BH numbering).
func (lo *lowerer) readReg8(r x86.Reg) uint8 {
	bl := lo.bl
	t := bl.VReg()
	if r < 4 {
		bl.OpI(rawisa.ANDI, t, hostReg(r), 0xff)
	} else {
		bl.OpI(rawisa.SRLI, t, hostReg(r-4), 8)
		bl.OpI(rawisa.ANDI, t, t, 0xff)
	}
	return t
}

// writeReg8 merges an 8-bit value into a guest byte register.
func (lo *lowerer) writeReg8(r x86.Reg, v uint8) {
	bl := lo.bl
	masked := bl.VReg()
	bl.OpI(rawisa.ANDI, masked, v, 0xff)
	if r < 4 {
		h := hostReg(r)
		t := bl.VReg()
		bl.OpI(rawisa.SRLI, t, h, 8)
		bl.OpI(rawisa.SLLI, t, t, 8)
		bl.Op3(rawisa.OR, h, t, masked)
	} else {
		h := hostReg(r - 4)
		loPart := bl.VReg()
		hiPart := bl.VReg()
		bl.OpI(rawisa.ANDI, loPart, h, 0xff)
		bl.OpI(rawisa.SRLI, hiPart, h, 16)
		bl.OpI(rawisa.SLLI, hiPart, hiPart, 16)
		bl.OpI(rawisa.SLLI, masked, masked, 8)
		bl.Op3(rawisa.OR, h, hiPart, loPart)
		bl.Op3(rawisa.OR, h, h, masked)
	}
}

// writeReg16 merges a 16-bit value into a guest register.
func (lo *lowerer) writeReg16(r x86.Reg, v uint8) {
	bl := lo.bl
	h := hostReg(r)
	t := bl.VReg()
	masked := bl.VReg()
	bl.OpI(rawisa.ANDI, masked, v, 0xffff&0xffff)
	bl.OpI(rawisa.SRLI, t, h, 16)
	bl.OpI(rawisa.SLLI, t, t, 16)
	bl.Op3(rawisa.OR, h, t, masked)
}

// dst is a prepared destination: for memory operands the effective
// address is computed once and shared between the read (for RMW ops)
// and the write.
type dst struct {
	o  x86.Operand
	ea uint8
}

func (lo *lowerer) prepDst(o x86.Operand) dst {
	d := dst{o: o}
	if o.Kind == x86.KMem {
		d.ea = lo.computeEA(o)
	}
	return d
}

// readDst reads the current value of a prepared destination,
// zero-extended to its size.
func (lo *lowerer) readDst(d dst) uint8 {
	bl := lo.bl
	switch d.o.Kind {
	case x86.KReg:
		switch d.o.Size {
		case 1:
			return lo.readReg8(d.o.Reg)
		case 2:
			t := bl.VReg()
			bl.OpI(rawisa.ANDI, t, hostReg(d.o.Reg), int32(0xffff))
			return t
		default:
			return hostReg(d.o.Reg)
		}
	case x86.KMem:
		t := bl.VReg()
		switch d.o.Size {
		case 1:
			bl.Emit(rawisa.Inst{Op: rawisa.GLBU, Rd: t, Rs: d.ea})
		case 2:
			bl.Emit(rawisa.Inst{Op: rawisa.GLHU, Rd: t, Rs: d.ea})
		default:
			bl.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: t, Rs: d.ea})
		}
		return t
	}
	panic("translate: readDst of non-lvalue")
}

// writeDst stores a value to a prepared destination.
func (lo *lowerer) writeDst(d dst, v uint8) {
	bl := lo.bl
	switch d.o.Kind {
	case x86.KReg:
		switch d.o.Size {
		case 1:
			lo.writeReg8(d.o.Reg, v)
		case 2:
			lo.writeReg16(d.o.Reg, v)
		default:
			bl.Move(hostReg(d.o.Reg), v)
		}
	case x86.KMem:
		switch d.o.Size {
		case 1:
			bl.Emit(rawisa.Inst{Op: rawisa.GSB, Rs: d.ea, Rt: v})
		case 2:
			bl.Emit(rawisa.Inst{Op: rawisa.GSH, Rs: d.ea, Rt: v})
		default:
			bl.Emit(rawisa.Inst{Op: rawisa.GSW, Rs: d.ea, Rt: v})
		}
	default:
		panic("translate: writeDst of non-lvalue")
	}
}

// readVal reads any operand, zero-extended to its size.
func (lo *lowerer) readVal(o x86.Operand) uint8 {
	bl := lo.bl
	switch o.Kind {
	case x86.KImm:
		t := bl.VReg()
		bl.LoadImm(t, uint32(o.Imm)&x86.SizeMask(o.Size))
		return t
	case x86.KReg, x86.KMem:
		return lo.readDst(lo.prepDst(o))
	}
	panic("translate: readVal of empty operand")
}

// readValSigned reads an operand sign-extended from its size.
func (lo *lowerer) readValSigned(o x86.Operand) uint8 {
	bl := lo.bl
	if o.Kind == x86.KMem && o.Size != 4 {
		ea := lo.computeEA(o)
		t := bl.VReg()
		op := rawisa.GLB
		if o.Size == 2 {
			op = rawisa.GLH
		}
		bl.Emit(rawisa.Inst{Op: op, Rd: t, Rs: ea})
		return t
	}
	v := lo.readVal(o)
	if o.Size == 4 {
		return v
	}
	t := bl.VReg()
	sh := int32(32 - int(o.Size)*8)
	bl.OpI(rawisa.SLLI, t, v, sh)
	bl.OpI(rawisa.SRAI, t, t, sh)
	return t
}

// assist emits an interpreter-assist for the instruction.
func (lo *lowerer) assist(in *x86.Inst) {
	lo.bl.Emit(rawisa.Inst{Op: rawisa.ASSIST, Target: in.Addr})
}

// push32 emits a push of the value in register v.
func (lo *lowerer) push32(v uint8) {
	bl := lo.bl
	sp := hostReg(x86.ESP)
	bl.OpI(rawisa.ADDI, sp, sp, -4)
	bl.Emit(rawisa.Inst{Op: rawisa.GSW, Rs: sp, Rt: v})
}

// pop32 emits a pop into a fresh register.
func (lo *lowerer) pop32() uint8 {
	bl := lo.bl
	sp := hostReg(x86.ESP)
	t := bl.VReg()
	bl.Emit(rawisa.Inst{Op: rawisa.GLW, Rd: t, Rs: sp})
	bl.OpI(rawisa.ADDI, sp, sp, 4)
	return t
}

// lower translates one guest instruction; live is the set of flag bits
// observable after it.
func (lo *lowerer) lower(in *x86.Inst, live uint32) error {
	bl := lo.bl
	switch in.Op {
	case x86.MOV:
		if in.Src.Kind == x86.KImm && in.Dst.Kind == x86.KReg && in.Dst.Size == 4 {
			bl.LoadImm(hostReg(in.Dst.Reg), uint32(in.Src.Imm))
			return nil
		}
		d := lo.prepDst(in.Dst)
		v := lo.readVal(in.Src)
		lo.writeDst(d, v)

	case x86.MOVZX:
		v := lo.readVal(in.Src)
		lo.writeDst(lo.prepDst(in.Dst), v)

	case x86.MOVSX:
		v := lo.readValSigned(in.Src)
		lo.writeDst(lo.prepDst(in.Dst), v)

	case x86.LEA:
		ea := lo.computeEA(in.Src)
		lo.writeDst(lo.prepDst(in.Dst), ea)

	case x86.XCHG:
		d1 := lo.prepDst(in.Dst)
		d2 := lo.prepDst(in.Src)
		a := lo.readDst(d1)
		b := lo.readDst(d2)
		lo.writeDst(d1, b)
		lo.writeDst(d2, a)

	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.CMP:
		lo.lowerAddSub(in, live)

	case x86.AND, x86.OR, x86.XOR, x86.TEST:
		lo.lowerLogic(in, live)

	case x86.NOT:
		d := lo.prepDst(in.Dst)
		a := lo.readDst(d)
		r := bl.VReg()
		if in.Dst.Size == 4 {
			bl.Op3(rawisa.NOR, r, a, rawisa.RegZero)
		} else {
			bl.OpI(rawisa.XORI, r, a, int32(x86.SizeMask(in.Dst.Size)))
		}
		lo.writeDst(d, r)

	case x86.NEG:
		d := lo.prepDst(in.Dst)
		a := lo.readDst(d)
		r := bl.VReg()
		bl.Op3(rawisa.SUB, r, rawisa.RegZero, a)
		if in.Dst.Size != 4 {
			bl.OpI(rawisa.ANDI, r, r, int32(x86.SizeMask(in.Dst.Size)))
		}
		emitArithFlags(bl, arithFlags{a: rawisa.RegZero, b: a, r: r, sum: r, cin: 0xff, size: in.Dst.Size, sub: true}, live)
		lo.writeDst(d, r)

	case x86.INC, x86.DEC:
		d := lo.prepDst(in.Dst)
		a := lo.readDst(d)
		r := bl.VReg()
		one := bl.VReg()
		bl.OpI(rawisa.ADDI, one, rawisa.RegZero, 1)
		sum := r
		sub := in.Op == x86.DEC
		if sub {
			bl.Op3(rawisa.SUB, r, a, one)
		} else {
			bl.Op3(rawisa.ADD, r, a, one)
		}
		if in.Dst.Size != 4 {
			sum = r
			m := bl.VReg()
			bl.OpI(rawisa.ANDI, m, r, int32(x86.SizeMask(in.Dst.Size)))
			r = m
		}
		emitArithFlags(bl, arithFlags{a: a, b: one, r: r, sum: sum, cin: 0xff, size: in.Dst.Size, sub: sub},
			live&^x86.FlagCF)
		lo.writeDst(d, r)

	case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
		lo.lowerShift(in, live)

	case x86.IMUL, x86.MUL:
		if in.OpSize != 4 {
			lo.assist(in)
			return nil
		}
		lo.lowerWideMul(in, live)

	case x86.IMUL2:
		lo.lowerIMul2(in, live)

	case x86.DIV, x86.IDIV:
		lo.assist(in)

	case x86.CDQ:
		bl.OpI(rawisa.SRAI, hostReg(x86.EDX), hostReg(x86.EAX), 31)

	case x86.BSWAP:
		h := hostReg(in.Dst.Reg)
		t1 := bl.VReg()
		t2 := bl.VReg()
		t3 := bl.VReg()
		bl.OpI(rawisa.SLLI, t1, h, 24)
		bl.OpI(rawisa.SRLI, t2, h, 24)
		bl.Op3(rawisa.OR, t1, t1, t2)
		bl.OpI(rawisa.SRLI, t2, h, 8)
		bl.OpI(rawisa.ANDI, t2, t2, 0xff00)
		bl.OpI(rawisa.ANDI, t3, h, 0xff00)
		bl.OpI(rawisa.SLLI, t3, t3, 8)
		bl.Op3(rawisa.OR, t1, t1, t2)
		bl.Op3(rawisa.OR, h, t1, t3)

	case x86.PUSH:
		v := lo.readVal(in.Dst)
		lo.push32(v)

	case x86.POP:
		v := lo.pop32()
		lo.writeDst(lo.prepDst(in.Dst), v)

	case x86.LEAVE:
		sp, bp := hostReg(x86.ESP), hostReg(x86.EBP)
		bl.Move(sp, bp)
		v := lo.pop32()
		bl.Move(bp, v)

	case x86.CALL:
		next := bl.VReg()
		bl.LoadImm(next, in.Next())
		lo.push32(next)
		bl.Chain(in.BranchTarget())
		lo.kind, lo.target, lo.fall, lo.ended = ExitCall, in.BranchTarget(), in.Next(), true

	case x86.CALLIND:
		tgt := lo.readVal(in.Src)
		next := bl.VReg()
		bl.LoadImm(next, in.Next())
		lo.push32(next)
		bl.ExitReg(tgt)
		lo.kind, lo.fall, lo.ended = ExitIndirect, in.Next(), true

	case x86.RET:
		t := lo.pop32()
		if in.Dst.Kind == x86.KImm && in.Dst.Imm != 0 {
			sp := hostReg(x86.ESP)
			bl.AddImm(sp, sp, in.Dst.Imm)
		}
		bl.ExitReg(t)
		lo.kind, lo.ended = ExitRet, true

	case x86.JMP:
		bl.Chain(in.BranchTarget())
		lo.kind, lo.target, lo.ended = ExitFall, in.BranchTarget(), true

	case x86.JMPIND:
		t := lo.readVal(in.Src)
		bl.ExitReg(t)
		lo.kind, lo.ended = ExitIndirect, true

	case x86.JCC:
		t := condTest(bl, in.Cond)
		taken := bl.NewLabel()
		brOp := rawisa.BNE
		if in.Cond&1 != 0 {
			brOp = rawisa.BEQ
		}
		bl.EmitBranch(rawisa.Inst{Op: brOp, Rs: t, Rt: rawisa.RegZero}, taken)
		bl.Chain(in.Next())
		bl.Bind(taken)
		bl.Chain(in.BranchTarget())
		lo.kind = ExitBranch
		lo.target, lo.fall = in.BranchTarget(), in.Next()
		lo.back = in.BranchTarget() <= in.Addr
		lo.ended = true

	case x86.SETCC:
		t := condTest(bl, in.Cond)
		r := bl.VReg()
		bl.Op3(rawisa.SLTU, r, rawisa.RegZero, t)
		if in.Cond&1 != 0 {
			bl.OpI(rawisa.XORI, r, r, 1)
		}
		lo.writeDst(lo.prepDst(in.Dst), r)

	case x86.CMOVCC:
		t := condTest(bl, in.Cond)
		skip := bl.NewLabel()
		brOp := rawisa.BEQ // skip when base cond false
		if in.Cond&1 != 0 {
			brOp = rawisa.BNE
		}
		bl.EmitBranch(rawisa.Inst{Op: brOp, Rs: t, Rt: rawisa.RegZero}, skip)
		v := lo.readVal(in.Src)
		lo.writeDst(lo.prepDst(in.Dst), v)
		bl.Bind(skip)

	case x86.MOVS, x86.STOS, x86.LODS, x86.SCAS, x86.CMPS:
		lo.assist(in)

	case x86.RCL, x86.RCR, x86.SHLD, x86.SHRD, x86.BT, x86.BTS, x86.BTR,
		x86.BTC, x86.BSF, x86.BSR, x86.CMPXCHG, x86.XADD:
		// Infrequent multi-flag/bit-string operations: interpreter
		// fallback, as a lean translator would trap rather than inline.
		lo.assist(in)

	case x86.CWDE:
		if in.OpSize == 2 { // CBW: AX = sext8(AL)
			al := lo.readReg8(0)
			t := bl.VReg()
			bl.OpI(rawisa.SLLI, t, al, 24)
			bl.OpI(rawisa.SRAI, t, t, 24)
			lo.writeReg16(x86.EAX, t)
		} else { // CWDE: EAX = sext16(AX)
			eax := hostReg(x86.EAX)
			bl.OpI(rawisa.SLLI, eax, eax, 16)
			bl.OpI(rawisa.SRAI, eax, eax, 16)
		}

	case x86.CLC:
		bl.OpI(rawisa.ANDI, fr, fr, int32(allFlagBits&^x86.FlagCF))
	case x86.STC:
		bl.OpI(rawisa.ORI, fr, fr, int32(x86.FlagCF))
	case x86.CMC:
		bl.OpI(rawisa.XORI, fr, fr, int32(x86.FlagCF))
	case x86.CLD:
		bl.OpI(rawisa.ANDI, fr, fr, int32(allFlagBits&^x86.FlagDF))
	case x86.STD:
		bl.OpI(rawisa.ORI, fr, fr, int32(x86.FlagDF))

	case x86.SAHF:
		const m = x86.FlagSF | x86.FlagZF | x86.FlagAF | x86.FlagPF | x86.FlagCF
		ah := lo.readReg8(4) // AH
		t := bl.VReg()
		bl.OpI(rawisa.ANDI, t, ah, int32(m))
		bl.OpI(rawisa.ANDI, fr, fr, int32(allFlagBits&^m))
		bl.Op3(rawisa.OR, fr, fr, t)
	case x86.LAHF:
		const m = x86.FlagSF | x86.FlagZF | x86.FlagAF | x86.FlagPF | x86.FlagCF
		t := bl.VReg()
		bl.OpI(rawisa.ANDI, t, fr, int32(m))
		bl.OpI(rawisa.ORI, t, t, 2)
		lo.writeReg8(4, t) // AH

	case x86.INT:
		if in.Dst.Imm != 0x80 {
			lo.assist(in) // faults at runtime
			bl.ExitImm(in.Next())
			lo.kind, lo.target, lo.ended = ExitFall, in.Next(), true
			return nil
		}
		bl.Emit(rawisa.Inst{Op: rawisa.SYSC})
		bl.Chain(in.Next())
		lo.kind, lo.target, lo.ended = ExitFall, in.Next(), true

	case x86.NOPOP:
		// nothing

	case x86.HLT:
		lo.assist(in) // interpreter fallback faults
		bl.ExitImm(in.Next())
		lo.kind, lo.target, lo.ended = ExitFall, in.Next(), true

	default:
		return &Error{Addr: in.Addr, Reason: fmt.Sprintf("no lowering for %v", in.Op)}
	}
	return nil
}

// lowerAddSub handles ADD/ADC/SUB/SBB/CMP.
func (lo *lowerer) lowerAddSub(in *x86.Inst, live uint32) {
	bl := lo.bl
	size := in.Dst.Size
	d := lo.prepDst(in.Dst)
	a := lo.readDst(d)
	b := lo.readVal(in.Src)
	sub := in.Op == x86.SUB || in.Op == x86.SBB || in.Op == x86.CMP
	withCarry := in.Op == x86.ADC || in.Op == x86.SBB

	cin := uint8(0xff)
	if withCarry {
		cin = bl.VReg()
		bl.OpI(rawisa.ANDI, cin, fr, 1)
	}

	var r, sum uint8
	if sub {
		sum = bl.VReg()
		bl.Op3(rawisa.SUB, sum, a, b)
		r = sum
		if withCarry {
			r = bl.VReg()
			bl.Op3(rawisa.SUB, r, sum, cin)
		}
	} else {
		sum = bl.VReg()
		bl.Op3(rawisa.ADD, sum, a, b)
		r = sum
		if withCarry {
			r = bl.VReg()
			bl.Op3(rawisa.ADD, r, sum, cin)
		}
	}
	masked := r
	if size != 4 {
		masked = bl.VReg()
		bl.OpI(rawisa.ANDI, masked, r, int32(x86.SizeMask(size)))
	}
	// The flag helper's sum field: for sub-32-bit adds it wants the
	// final unmasked sum (carry lives at bit `bits`); for 32-bit
	// ADC/SBB it wants the pre-carry partial (a+b or a-b).
	fsum := sum
	if size != 4 {
		fsum = r
	}
	emitArithFlags(bl, arithFlags{a: a, b: b, r: masked, sum: fsum, cin: cin, size: size, sub: sub}, live)
	if in.Op != x86.CMP {
		lo.writeDst(d, masked)
	}
}

// lowerLogic handles AND/OR/XOR/TEST.
func (lo *lowerer) lowerLogic(in *x86.Inst, live uint32) {
	bl := lo.bl
	d := lo.prepDst(in.Dst)
	a := lo.readDst(d)
	b := lo.readVal(in.Src)
	r := bl.VReg()
	switch in.Op {
	case x86.AND, x86.TEST:
		bl.Op3(rawisa.AND, r, a, b)
	case x86.OR:
		bl.Op3(rawisa.OR, r, a, b)
	case x86.XOR:
		bl.Op3(rawisa.XOR, r, a, b)
	}
	emitLogicFlags(bl, r, in.Dst.Size, live)
	if in.Op != x86.TEST {
		lo.writeDst(d, r)
	}
}

// lowerShift handles the shift and rotate group.
func (lo *lowerer) lowerShift(in *x86.Inst, live uint32) {
	size := in.Dst.Size
	isRot := in.Op == x86.ROL || in.Op == x86.ROR
	if in.Src.Kind == x86.KImm {
		count := uint32(in.Src.Imm) & 31
		if count == 0 {
			return
		}
		if isRot {
			lo.lowerRotImm(in, count, live)
		} else {
			lo.lowerShiftImm(in, count, live)
		}
		return
	}
	// Count in CL. Inline only the common 32-bit shift; everything else
	// goes to the interpreter assist.
	if size != 4 || isRot {
		lo.assist(in)
		return
	}
	lo.lowerShiftCL(in, live)
}

func (lo *lowerer) lowerShiftImm(in *x86.Inst, count uint32, live uint32) {
	bl := lo.bl
	size := in.Dst.Size
	bits := uint32(size) * 8
	d := lo.prepDst(in.Dst)
	a := lo.readDst(d) // masked to size
	r := bl.VReg()
	cf := bl.VReg()

	switch in.Op {
	case x86.SHL:
		raw := bl.VReg()
		bl.OpI(rawisa.SLLI, raw, a, int32(count))
		if size == 4 {
			bl.Move(r, raw)
			bl.OpI(rawisa.SRLI, cf, a, int32(32-count))
			bl.OpI(rawisa.ANDI, cf, cf, 1)
		} else {
			bl.OpI(rawisa.ANDI, r, raw, int32(x86.SizeMask(size)))
			bl.OpI(rawisa.SRLI, cf, raw, int32(bits))
			bl.OpI(rawisa.ANDI, cf, cf, 1)
		}
		lo.shiftFlags(in, a, r, cf, size, live, true, false)
	case x86.SHR:
		bl.OpI(rawisa.SRLI, r, a, int32(count))
		bl.OpI(rawisa.SRLI, cf, a, int32(count-1))
		bl.OpI(rawisa.ANDI, cf, cf, 1)
		lo.shiftFlags(in, a, r, cf, size, live, false, false)
	case x86.SAR:
		src := a
		if size != 4 {
			se := bl.VReg()
			bl.OpI(rawisa.SLLI, se, a, int32(32-bits))
			bl.OpI(rawisa.SRAI, se, se, int32(32-bits))
			src = se
		}
		if count >= bits && size != 4 {
			bl.OpI(rawisa.SRAI, r, src, 31)
		} else {
			bl.OpI(rawisa.SRAI, r, src, int32(count))
		}
		if size != 4 {
			bl.OpI(rawisa.ANDI, r, r, int32(x86.SizeMask(size)))
		}
		c := count - 1
		if c > 31 {
			c = 31
		}
		bl.OpI(rawisa.SRAI, cf, src, int32(c))
		bl.OpI(rawisa.ANDI, cf, cf, 1)
		lo.shiftFlags(in, a, r, cf, size, live, false, true)
	}
	lo.writeDst(d, r)
}

// shiftFlags materializes the live flags of a SHL/SHR/SAR.
func (lo *lowerer) shiftFlags(in *x86.Inst, a, r, cf uint8, size uint8, live uint32, isShl, isSar bool) {
	bl := lo.bl
	live &= x86.FlagsArith
	if live == 0 {
		return
	}
	clearFlags(bl, live)
	if live&x86.FlagCF != 0 {
		t := bl.VReg()
		bl.Move(t, cf)
		orFlag(bl, t)
	}
	if live&x86.FlagOF != 0 && !isSar {
		t := bl.VReg()
		if isShl {
			// OF = msb(result) ^ CF.
			switch size {
			case 1:
				bl.OpI(rawisa.SRLI, t, r, 7)
			case 2:
				bl.OpI(rawisa.SRLI, t, r, 15)
			default:
				bl.OpI(rawisa.SRLI, t, r, 31)
			}
			bl.OpI(rawisa.ANDI, t, t, 1)
			bl.Op3(rawisa.XOR, t, t, cf)
		} else {
			// SHR: OF = msb(input).
			switch size {
			case 1:
				bl.OpI(rawisa.SRLI, t, a, 7)
			case 2:
				bl.OpI(rawisa.SRLI, t, a, 15)
			default:
				bl.OpI(rawisa.SRLI, t, a, 31)
			}
			bl.OpI(rawisa.ANDI, t, t, 1)
		}
		emitBit01(bl, t, 11)
	}
	if live&x86.FlagZF != 0 {
		emitZF(bl, r)
	}
	if live&x86.FlagSF != 0 {
		emitSF(bl, r, size)
	}
	if live&x86.FlagPF != 0 {
		emitPF(bl, r)
	}
	// AF is architecturally undefined for shifts; our canonical
	// semantics leave it cleared, which clearFlags already did.
}

// lowerRotImm handles ROL/ROR with an immediate count (32-bit only;
// sub-size rotates go through lowerShift's assist path).
func (lo *lowerer) lowerRotImm(in *x86.Inst, count uint32, live uint32) {
	if in.Dst.Size != 4 {
		lo.assist(in)
		return
	}
	bl := lo.bl
	d := lo.prepDst(in.Dst)
	a := lo.readDst(d)
	r := bl.VReg()
	t := bl.VReg()
	c := count & 31
	if in.Op == x86.ROR {
		c = (32 - c) & 31
	}
	if c == 0 {
		bl.Move(r, a)
	} else {
		bl.OpI(rawisa.SLLI, r, a, int32(c))
		bl.OpI(rawisa.SRLI, t, a, int32(32-c))
		bl.Op3(rawisa.OR, r, r, t)
	}
	live &= x86.FlagCF | x86.FlagOF
	if live != 0 {
		clearFlags(bl, live)
		if in.Op == x86.ROL {
			if live&x86.FlagCF != 0 {
				bl.OpI(rawisa.ANDI, t, r, 1)
				orFlag(bl, t)
			}
			if live&x86.FlagOF != 0 {
				u := bl.VReg()
				bl.OpI(rawisa.SRLI, t, r, 31)
				bl.OpI(rawisa.ANDI, u, r, 1)
				bl.Op3(rawisa.XOR, t, t, u)
				emitBit01(bl, t, 11)
			}
		} else {
			if live&x86.FlagCF != 0 {
				bl.OpI(rawisa.SRLI, t, r, 31)
				orFlag(bl, t)
			}
			if live&x86.FlagOF != 0 {
				u := bl.VReg()
				bl.OpI(rawisa.SRLI, t, r, 31)
				bl.OpI(rawisa.SRLI, u, r, 30)
				bl.OpI(rawisa.ANDI, u, u, 1)
				bl.Op3(rawisa.XOR, t, t, u)
				emitBit01(bl, t, 11)
			}
		}
	}
	lo.writeDst(d, r)
}

// lowerShiftCL handles 32-bit shifts with the count in CL. The result
// is computed unconditionally (a zero count is the identity); the flag
// update is branched over when the count is zero, matching the
// architecture.
func (lo *lowerer) lowerShiftCL(in *x86.Inst, live uint32) {
	bl := lo.bl
	d := lo.prepDst(in.Dst)
	a := lo.readDst(d)
	count := bl.VReg()
	bl.OpI(rawisa.ANDI, count, hostReg(x86.ECX), 31)
	r := bl.VReg()
	var op rawisa.Op
	switch in.Op {
	case x86.SHL:
		op = rawisa.SLL
	case x86.SHR:
		op = rawisa.SRL
	default:
		op = rawisa.SRA
	}
	bl.Op3(op, r, count, a) // rd = rt shifted by rs

	live &= x86.FlagsArith
	if live != 0 {
		skip := bl.NewLabel()
		bl.EmitBranch(rawisa.Inst{Op: rawisa.BEQ, Rs: count, Rt: rawisa.RegZero}, skip)
		cf := bl.VReg()
		cm1 := bl.VReg()
		switch in.Op {
		case x86.SHL:
			// CF = bit (32-count) of a.
			bl.OpI(rawisa.ADDI, cm1, count, -32)
			bl.Op3(rawisa.SUB, cm1, rawisa.RegZero, cm1) // 32-count
			bl.Op3(rawisa.SRL, cf, cm1, a)
			bl.OpI(rawisa.ANDI, cf, cf, 1)
		case x86.SHR:
			bl.OpI(rawisa.ADDI, cm1, count, -1)
			bl.Op3(rawisa.SRL, cf, cm1, a)
			bl.OpI(rawisa.ANDI, cf, cf, 1)
		default:
			bl.OpI(rawisa.ADDI, cm1, count, -1)
			bl.Op3(rawisa.SRA, cf, cm1, a)
			bl.OpI(rawisa.ANDI, cf, cf, 1)
		}
		lo.shiftFlags(in, a, r, cf, 4, live, in.Op == x86.SHL, in.Op == x86.SAR)
		bl.Bind(skip)
	}
	lo.writeDst(d, r)
}

// lowerWideMul handles the one-operand 32-bit MUL/IMUL.
func (lo *lowerer) lowerWideMul(in *x86.Inst, live uint32) {
	bl := lo.bl
	b := lo.readVal(in.Src)
	eax, edx := hostReg(x86.EAX), hostReg(x86.EDX)
	op := rawisa.MULTU
	if in.Op == x86.IMUL {
		op = rawisa.MULT
	}
	bl.Emit(rawisa.Inst{Op: op, Rs: eax, Rt: b})
	loR := bl.VReg()
	hiR := bl.VReg()
	bl.Emit(rawisa.Inst{Op: rawisa.MFLO, Rd: loR})
	bl.Emit(rawisa.Inst{Op: rawisa.MFHI, Rd: hiR})
	bl.Move(eax, loR)
	bl.Move(edx, hiR)
	if live&x86.FlagsArith != 0 {
		hiSig := bl.VReg()
		if in.Op == x86.IMUL {
			s := bl.VReg()
			bl.OpI(rawisa.SRAI, s, loR, 31)
			bl.Op3(rawisa.XOR, hiSig, hiR, s)
			bl.Op3(rawisa.SLTU, hiSig, rawisa.RegZero, hiSig)
		} else {
			bl.Op3(rawisa.SLTU, hiSig, rawisa.RegZero, hiR)
		}
		emitMulFlags(bl, loR, hiSig, 4, live)
	}
}

// lowerIMul2 handles the 2- and 3-operand truncating IMUL.
func (lo *lowerer) lowerIMul2(in *x86.Inst, live uint32) {
	if in.Dst.Size != 4 {
		lo.assist(in) // 16-bit IMUL with 0x66 prefix: interpreter path
		return
	}
	bl := lo.bl
	var a, b uint8
	if in.Src2.Kind != x86.KNone {
		a = lo.readVal(in.Src)
		b = lo.readValSigned(in.Src2)
	} else {
		a = lo.readVal(in.Dst)
		b = lo.readVal(in.Src)
	}
	bl.Emit(rawisa.Inst{Op: rawisa.MULT, Rs: a, Rt: b})
	loR := bl.VReg()
	bl.Emit(rawisa.Inst{Op: rawisa.MFLO, Rd: loR})
	if live&x86.FlagsArith != 0 {
		hiR := bl.VReg()
		bl.Emit(rawisa.Inst{Op: rawisa.MFHI, Rd: hiR})
		hiSig := bl.VReg()
		s := bl.VReg()
		bl.OpI(rawisa.SRAI, s, loR, 31)
		bl.Op3(rawisa.XOR, hiSig, hiR, s)
		bl.Op3(rawisa.SLTU, hiSig, rawisa.RegZero, hiSig)
		emitMulFlags(bl, loR, hiSig, 4, live)
	}
	lo.writeDst(lo.prepDst(in.Dst), loR)
}
