package translate

// Tier-0 template translation: the IR-less fast path. Each guest
// instruction with a template is expanded directly to host (Raw)
// instructions over the physical scratch registers — no IR build, no
// optimizer, no register allocation — so translation occupancy is a
// fraction of the full pipeline's. Blocks containing any un-templated
// instruction fall back wholesale to the optimizing tier via
// TranslateTier.
//
// Correctness contract: tier-0 consumes the SAME flag-liveness
// annotations as the optimizing tier (flagLiveness is a pure function
// of the decoded block), and its flag templates compute bit-identical
// EFLAGS values to the emitters in flagemit.go. Dead flag bits are left
// stale by both tiers in exactly the same positions, so the
// architectural state after any block is independent of which tier
// translated it — the property the differential and fleet-invariance
// tests pin.

import (
	"errors"
	"fmt"

	"tilevm/internal/ir"
	"tilevm/internal/rawisa"
	"tilevm/internal/x86"
)

// ErrUntemplated reports that a block contains an instruction without a
// tier-0 template (or one that would exceed the physical scratch
// registers). Callers fall back to the optimizing pipeline.
var ErrUntemplated = errors.New("tier0: no template")

// TranslateTier is the single tier-dispatch point: every translation in
// the system — slave tiles, rollback re-translation, replay — must go
// through it so record/replay and rollback can never disagree on tier
// choice. With tier0 false (or on template miss) it is exactly
// TranslateFinal.
func (t *Translator) TranslateTier(mem CodeReader, addr uint32, tier0 bool) (*Result, error) {
	if tier0 {
		res, err := t.TranslateTemplate(mem, addr)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrUntemplated) {
			return nil, err
		}
	}
	return t.TranslateFinal(mem, addr)
}

// TranslateTemplate translates the block at addr through the tier-0
// template path only, returning ErrUntemplated if any instruction in
// the block has no template.
func (t *Translator) TranslateTemplate(mem CodeReader, addr uint32) (*Result, error) {
	insts, err := discoverBlock(mem, addr, MaxBlockInsts)
	if err != nil {
		return nil, err
	}
	live := flagLiveness(insts, mem, t.Opts.ConservativeFlags)
	e := &emitter{}
	for i := range insts {
		e.beginInst()
		if !e.template(&insts[i], live[i]) {
			return nil, fmt.Errorf("%w: %v at %#x", ErrUntemplated, insts[i].Op, insts[i].Addr)
		}
		if e.spill {
			return nil, fmt.Errorf("%w: scratch registers exhausted at %#x", ErrUntemplated, insts[i].Addr)
		}
	}
	last := insts[len(insts)-1]
	end := last.Next()
	if !last.EndsBlock() && !e.ended {
		// Size-capped block (or undecodable tail): chain to the next
		// instruction, as the optimizing tier does.
		e.emit(rawisa.Inst{Op: rawisa.CHAIN, Target: end})
		e.kind, e.target = ExitFall, end
	}
	return &Result{
		Block: &Block{
			Block:         &ir.Block{GuestAddr: addr, GuestLen: end - addr, NumGuest: len(insts)},
			Kind:          e.kind,
			Target:        e.target,
			FallTarget:    e.fall,
			BackwardTaken: e.back,
		},
		Code:      e.code,
		CodeBytes: rawisa.CodeBytes(e.code),
		Tier:      TierTemplate,
	}, nil
}

// emitter assembles host code directly into the physical register file.
// Scratch registers RegTmp0..RegTmpN are block-local on the host, so
// the allocator simply resets at every guest instruction boundary; the
// flag templates share two dedicated scratch slots (ft/fu) across the
// per-flag emitters, which keeps the worst-case template (a sub-size
// ADC to memory with every flag live) inside the physical budget.
type emitter struct {
	code   []rawisa.Inst
	next   uint8 // next free scratch register
	ft, fu uint8 // shared flag-template scratch, allocated lazily
	spill  bool  // a template overran the scratch registers

	kind   ExitKind
	target uint32
	fall   uint32
	back   bool
	ended  bool
}

func (e *emitter) beginInst() {
	e.next = rawisa.RegTmp0
	e.ft, e.fu = 0, 0
}

func (e *emitter) tmp() uint8 {
	if e.next > rawisa.RegTmpN {
		e.spill = true
		return rawisa.RegTmpN
	}
	r := e.next
	e.next++
	return r
}

// ftmp/futmp are the two scratch registers shared by the flag
// templates: each per-flag emitter's intermediates die at its orFlag,
// so sequential emitters can reuse the same slots.
func (e *emitter) ftmp() uint8 {
	if e.ft == 0 {
		e.ft = e.tmp()
	}
	return e.ft
}

func (e *emitter) futmp() uint8 {
	if e.fu == 0 {
		e.fu = e.tmp()
	}
	return e.fu
}

func (e *emitter) emit(in rawisa.Inst) { e.code = append(e.code, in) }

func (e *emitter) op3(op rawisa.Op, rd, rs, rt uint8) {
	e.emit(rawisa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt})
}

func (e *emitter) opI(op rawisa.Op, rd, rs uint8, imm int32) {
	e.emit(rawisa.Inst{Op: op, Rd: rd, Rs: rs, Imm: imm})
}

func (e *emitter) move(rd, rs uint8) {
	if rd == rs {
		return
	}
	e.op3(rawisa.OR, rd, rs, rawisa.RegZero)
}

func (e *emitter) loadImm(rd uint8, v uint32) {
	switch {
	case v == 0:
		e.move(rd, rawisa.RegZero)
	case rawisa.FitsSImm(int32(v)):
		e.opI(rawisa.ADDI, rd, rawisa.RegZero, int32(v))
	case v&0xffff == 0:
		e.opI(rawisa.LUI, rd, 0, int32(v>>16))
	default:
		e.opI(rawisa.LUI, rd, 0, int32(v>>16))
		e.opI(rawisa.ORI, rd, rd, int32(v&0xffff))
	}
}

func (e *emitter) addImm(rd, rs uint8, v int32) {
	if v == 0 {
		e.move(rd, rs)
		return
	}
	if rawisa.FitsSImm(v) {
		e.opI(rawisa.ADDI, rd, rs, v)
		return
	}
	t := e.tmp()
	e.loadImm(t, uint32(v))
	e.op3(rawisa.ADD, rd, rs, t)
}

// branchOver emits a conditional branch whose target is bound later
// with bind; the returned value is the branch's code index.
func (e *emitter) branchOver(op rawisa.Op, rs, rt uint8) int {
	e.emit(rawisa.Inst{Op: op, Rs: rs, Rt: rt})
	return len(e.code) - 1
}

// bind points a pending branch at the NEXT instruction to be emitted
// (rawexec branch offsets are in instruction slots relative to the
// instruction after the branch).
func (e *emitter) bind(at int) {
	e.code[at].Imm = int32(len(e.code) - (at + 1))
}

// computeEA materializes a memory operand's effective address into a
// scratch register (the template analog of lowerer.computeEA).
func (e *emitter) computeEA(o x86.Operand) uint8 {
	ea := e.tmp()
	switch {
	case o.Base != x86.NoIndex && o.Index != x86.NoIndex:
		idx := hostReg(x86.Reg(o.Index))
		if o.Scale > 1 {
			e.opI(rawisa.SLLI, ea, idx, int32(log2u8(o.Scale)))
			e.op3(rawisa.ADD, ea, ea, hostReg(x86.Reg(o.Base)))
		} else {
			e.op3(rawisa.ADD, ea, hostReg(x86.Reg(o.Base)), idx)
		}
		if o.Disp != 0 {
			e.addImm(ea, ea, o.Disp)
		}
	case o.Base != x86.NoIndex:
		e.addImm(ea, hostReg(x86.Reg(o.Base)), o.Disp)
	case o.Index != x86.NoIndex:
		idx := hostReg(x86.Reg(o.Index))
		if o.Scale > 1 {
			e.opI(rawisa.SLLI, ea, idx, int32(log2u8(o.Scale)))
		} else {
			e.move(ea, idx)
		}
		if o.Disp != 0 {
			e.addImm(ea, ea, o.Disp)
		}
	default:
		e.loadImm(ea, uint32(o.Disp))
	}
	return ea
}

func (e *emitter) readReg8(r x86.Reg) uint8 {
	t := e.tmp()
	if r < 4 {
		e.opI(rawisa.ANDI, t, hostReg(r), 0xff)
	} else {
		e.opI(rawisa.SRLI, t, hostReg(r-4), 8)
		e.opI(rawisa.ANDI, t, t, 0xff)
	}
	return t
}

func (e *emitter) writeReg8(r x86.Reg, v uint8) {
	masked := e.tmp()
	e.opI(rawisa.ANDI, masked, v, 0xff)
	if r < 4 {
		h := hostReg(r)
		t := e.tmp()
		e.opI(rawisa.SRLI, t, h, 8)
		e.opI(rawisa.SLLI, t, t, 8)
		e.op3(rawisa.OR, h, t, masked)
	} else {
		h := hostReg(r - 4)
		loPart := e.tmp()
		hiPart := e.tmp()
		e.opI(rawisa.ANDI, loPart, h, 0xff)
		e.opI(rawisa.SRLI, hiPart, h, 16)
		e.opI(rawisa.SLLI, hiPart, hiPart, 16)
		e.opI(rawisa.SLLI, masked, masked, 8)
		e.op3(rawisa.OR, h, hiPart, loPart)
		e.op3(rawisa.OR, h, h, masked)
	}
}

func (e *emitter) writeReg16(r x86.Reg, v uint8) {
	h := hostReg(r)
	t := e.tmp()
	masked := e.tmp()
	e.opI(rawisa.ANDI, masked, v, 0xffff)
	e.opI(rawisa.SRLI, t, h, 16)
	e.opI(rawisa.SLLI, t, t, 16)
	e.op3(rawisa.OR, h, t, masked)
}

// eDst mirrors lowerer.dst: a destination with its effective address
// computed once and shared between the RMW read and the write.
type eDst struct {
	o  x86.Operand
	ea uint8
}

func (e *emitter) prepDst(o x86.Operand) eDst {
	d := eDst{o: o}
	if o.Kind == x86.KMem {
		d.ea = e.computeEA(o)
	}
	return d
}

func (e *emitter) readDst(d eDst) uint8 {
	switch d.o.Kind {
	case x86.KReg:
		switch d.o.Size {
		case 1:
			return e.readReg8(d.o.Reg)
		case 2:
			t := e.tmp()
			e.opI(rawisa.ANDI, t, hostReg(d.o.Reg), 0xffff)
			return t
		default:
			return hostReg(d.o.Reg)
		}
	case x86.KMem:
		t := e.tmp()
		switch d.o.Size {
		case 1:
			e.emit(rawisa.Inst{Op: rawisa.GLBU, Rd: t, Rs: d.ea})
		case 2:
			e.emit(rawisa.Inst{Op: rawisa.GLHU, Rd: t, Rs: d.ea})
		default:
			e.emit(rawisa.Inst{Op: rawisa.GLW, Rd: t, Rs: d.ea})
		}
		return t
	}
	panic("tier0: readDst of non-lvalue")
}

func (e *emitter) writeDst(d eDst, v uint8) {
	switch d.o.Kind {
	case x86.KReg:
		switch d.o.Size {
		case 1:
			e.writeReg8(d.o.Reg, v)
		case 2:
			e.writeReg16(d.o.Reg, v)
		default:
			e.move(hostReg(d.o.Reg), v)
		}
	case x86.KMem:
		switch d.o.Size {
		case 1:
			e.emit(rawisa.Inst{Op: rawisa.GSB, Rs: d.ea, Rt: v})
		case 2:
			e.emit(rawisa.Inst{Op: rawisa.GSH, Rs: d.ea, Rt: v})
		default:
			e.emit(rawisa.Inst{Op: rawisa.GSW, Rs: d.ea, Rt: v})
		}
	default:
		panic("tier0: writeDst of non-lvalue")
	}
}

func (e *emitter) readVal(o x86.Operand) uint8 {
	switch o.Kind {
	case x86.KImm:
		t := e.tmp()
		e.loadImm(t, uint32(o.Imm)&x86.SizeMask(o.Size))
		return t
	case x86.KReg, x86.KMem:
		return e.readDst(e.prepDst(o))
	}
	panic("tier0: readVal of empty operand")
}

func (e *emitter) readValSigned(o x86.Operand) uint8 {
	if o.Kind == x86.KMem && o.Size != 4 {
		ea := e.computeEA(o)
		t := e.tmp()
		op := rawisa.GLB
		if o.Size == 2 {
			op = rawisa.GLH
		}
		e.emit(rawisa.Inst{Op: op, Rd: t, Rs: ea})
		return t
	}
	v := e.readVal(o)
	if o.Size == 4 {
		return v
	}
	t := e.tmp()
	sh := int32(32 - int(o.Size)*8)
	e.opI(rawisa.SLLI, t, v, sh)
	e.opI(rawisa.SRAI, t, t, sh)
	return t
}

func (e *emitter) push32(v uint8) {
	sp := hostReg(x86.ESP)
	e.opI(rawisa.ADDI, sp, sp, -4)
	e.emit(rawisa.Inst{Op: rawisa.GSW, Rs: sp, Rt: v})
}

func (e *emitter) pop32() uint8 {
	sp := hostReg(x86.ESP)
	t := e.tmp()
	e.emit(rawisa.Inst{Op: rawisa.GLW, Rd: t, Rs: sp})
	e.opI(rawisa.ADDI, sp, sp, 4)
	return t
}

// Flag templates. These compute bit-identical EFLAGS values to the IR
// emitters in flagemit.go — only the live bits are cleared and
// recomputed, dead bits stay stale — using the shared ft/fu scratch.

func (e *emitter) clearFlags(bits uint32) {
	if bits == 0 {
		return
	}
	e.opI(rawisa.ANDI, fr, fr, int32(allFlagBits&^bits))
}

func (e *emitter) orFlag(t uint8) { e.op3(rawisa.OR, fr, fr, t) }

func (e *emitter) eZF(r uint8) {
	t := e.ftmp()
	e.opI(rawisa.SLTIU, t, r, 1)
	e.opI(rawisa.SLLI, t, t, 6)
	e.orFlag(t)
}

func (e *emitter) eSF(r uint8, size uint8) {
	t := e.ftmp()
	switch size {
	case 1:
		e.opI(rawisa.ANDI, t, r, 0x80)
	case 2:
		e.opI(rawisa.SRLI, t, r, 8)
		e.opI(rawisa.ANDI, t, t, 0x80)
	default:
		e.opI(rawisa.SRLI, t, r, 24)
		e.opI(rawisa.ANDI, t, t, 0x80)
	}
	e.orFlag(t)
}

func (e *emitter) ePF(r uint8) {
	t := e.ftmp()
	u := e.futmp()
	e.opI(rawisa.ANDI, t, r, 0xff)
	e.opI(rawisa.SRLI, u, t, 4)
	e.op3(rawisa.XOR, t, t, u)
	e.opI(rawisa.SRLI, u, t, 2)
	e.op3(rawisa.XOR, t, t, u)
	e.opI(rawisa.SRLI, u, t, 1)
	e.op3(rawisa.XOR, t, t, u)
	e.opI(rawisa.XORI, t, t, 1)
	e.opI(rawisa.ANDI, t, t, 1)
	e.opI(rawisa.SLLI, t, t, 2)
	e.orFlag(t)
}

func (e *emitter) eAF(a, b, r uint8) {
	t := e.ftmp()
	e.op3(rawisa.XOR, t, a, b)
	e.op3(rawisa.XOR, t, t, r)
	e.opI(rawisa.ANDI, t, t, 0x10)
	e.orFlag(t)
}

func (e *emitter) eBit01(t uint8, pos uint) {
	if pos != 0 {
		e.opI(rawisa.SLLI, t, t, int32(pos))
	}
	e.orFlag(t)
}

func (e *emitter) eArithFlags(f arithFlags, live uint32) {
	live &= x86.FlagsArith
	if live == 0 {
		return
	}
	e.clearFlags(live)
	if live&x86.FlagCF != 0 {
		e.eCF(f)
	}
	if live&x86.FlagOF != 0 {
		e.eOF(f)
	}
	if live&x86.FlagAF != 0 {
		e.eAF(f.a, f.b, f.r)
	}
	if live&x86.FlagZF != 0 {
		e.eZF(f.r)
	}
	if live&x86.FlagSF != 0 {
		e.eSF(f.r, f.size)
	}
	if live&x86.FlagPF != 0 {
		e.ePF(f.r)
	}
}

func (e *emitter) eCF(f arithFlags) {
	t := e.ftmp()
	switch {
	case f.size != 4 && !f.sub:
		e.opI(rawisa.SRLI, t, f.sum, int32(f.size)*8)
		e.opI(rawisa.ANDI, t, t, 1)
	case f.size != 4 && f.sub:
		b := f.b
		if f.cin != 0xff {
			bsum := e.futmp()
			e.op3(rawisa.ADD, bsum, f.b, f.cin)
			b = bsum
		}
		e.op3(rawisa.SLTU, t, f.a, b)
	case !f.sub && f.cin == 0xff:
		e.op3(rawisa.SLTU, t, f.r, f.a)
	case !f.sub:
		t2 := e.futmp()
		e.op3(rawisa.SLTU, t, f.sum, f.a)
		e.op3(rawisa.SLTU, t2, f.r, f.sum)
		e.op3(rawisa.OR, t, t, t2)
	case f.cin == 0xff:
		e.op3(rawisa.SLTU, t, f.a, f.b)
	default:
		t2 := e.futmp()
		e.op3(rawisa.SLTU, t, f.a, f.b)
		e.op3(rawisa.SLTU, t2, f.sum, f.cin)
		e.op3(rawisa.OR, t, t, t2)
	}
	e.eBit01(t, 0)
}

func (e *emitter) eOF(f arithFlags) {
	t := e.ftmp()
	u := e.futmp()
	if f.sub {
		e.op3(rawisa.XOR, t, f.a, f.b)
		e.op3(rawisa.XOR, u, f.a, f.r)
	} else {
		e.op3(rawisa.XOR, t, f.a, f.r)
		e.op3(rawisa.XOR, u, f.b, f.r)
	}
	e.op3(rawisa.AND, t, t, u)
	switch f.size {
	case 1:
		e.opI(rawisa.SLLI, t, t, 4)
		e.opI(rawisa.ANDI, t, t, 0x800)
	case 2:
		e.opI(rawisa.SRLI, t, t, 4)
		e.opI(rawisa.ANDI, t, t, 0x800)
	default:
		e.opI(rawisa.SRLI, t, t, 20)
		e.opI(rawisa.ANDI, t, t, 0x800)
	}
	e.orFlag(t)
}

func (e *emitter) eLogicFlags(r uint8, size uint8, live uint32) {
	live &= x86.FlagsArith
	if live == 0 {
		return
	}
	e.clearFlags(live)
	if live&x86.FlagZF != 0 {
		e.eZF(r)
	}
	if live&x86.FlagSF != 0 {
		e.eSF(r, size)
	}
	if live&x86.FlagPF != 0 {
		e.ePF(r)
	}
}

// eCondTest computes a truthy scratch register for the base
// (even-numbered) condition of pair c, exactly as condTest does in IR.
func (e *emitter) eCondTest(c x86.Cond) uint8 {
	t := e.tmp()
	switch c &^ 1 {
	case x86.CondO:
		e.opI(rawisa.ANDI, t, fr, int32(x86.FlagOF))
	case x86.CondB:
		e.opI(rawisa.ANDI, t, fr, int32(x86.FlagCF))
	case x86.CondE:
		e.opI(rawisa.ANDI, t, fr, int32(x86.FlagZF))
	case x86.CondBE:
		e.opI(rawisa.ANDI, t, fr, int32(x86.FlagCF|x86.FlagZF))
	case x86.CondS:
		e.opI(rawisa.ANDI, t, fr, int32(x86.FlagSF))
	case x86.CondP:
		e.opI(rawisa.ANDI, t, fr, int32(x86.FlagPF))
	case x86.CondL:
		u := e.tmp()
		e.opI(rawisa.SLLI, t, fr, 4)
		e.opI(rawisa.ANDI, t, t, 0x800)
		e.opI(rawisa.ANDI, u, fr, 0x800)
		e.op3(rawisa.XOR, t, t, u)
	case x86.CondLE:
		u := e.tmp()
		e.opI(rawisa.SLLI, t, fr, 4)
		e.opI(rawisa.ANDI, t, t, 0x800)
		e.opI(rawisa.ANDI, u, fr, 0x800)
		e.op3(rawisa.XOR, t, t, u)
		e.opI(rawisa.ANDI, u, fr, int32(x86.FlagZF))
		e.op3(rawisa.OR, t, t, u)
	}
	return t
}

// template expands one guest instruction, or reports false when it has
// no tier-0 template. The supported set is the common integer / branch
// / mov subset; everything else (wide multiplies, divides, variable
// shifts, rotates, string and bit-string operations, BCD, rare system
// ops) falls back to the optimizing tier.
func (e *emitter) template(in *x86.Inst, live uint32) bool {
	switch in.Op {
	case x86.MOV:
		if in.Src.Kind == x86.KImm && in.Dst.Kind == x86.KReg && in.Dst.Size == 4 {
			e.loadImm(hostReg(in.Dst.Reg), uint32(in.Src.Imm))
			return true
		}
		d := e.prepDst(in.Dst)
		v := e.readVal(in.Src)
		e.writeDst(d, v)

	case x86.MOVZX:
		v := e.readVal(in.Src)
		e.writeDst(e.prepDst(in.Dst), v)

	case x86.MOVSX:
		v := e.readValSigned(in.Src)
		e.writeDst(e.prepDst(in.Dst), v)

	case x86.LEA:
		ea := e.computeEA(in.Src)
		e.writeDst(e.prepDst(in.Dst), ea)

	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.CMP:
		e.tAddSub(in, live)

	case x86.AND, x86.OR, x86.XOR, x86.TEST:
		e.tLogic(in, live)

	case x86.NOT:
		d := e.prepDst(in.Dst)
		a := e.readDst(d)
		r := e.tmp()
		if in.Dst.Size == 4 {
			e.op3(rawisa.NOR, r, a, rawisa.RegZero)
		} else {
			e.opI(rawisa.XORI, r, a, int32(x86.SizeMask(in.Dst.Size)))
		}
		e.writeDst(d, r)

	case x86.NEG:
		d := e.prepDst(in.Dst)
		a := e.readDst(d)
		r := e.tmp()
		e.op3(rawisa.SUB, r, rawisa.RegZero, a)
		if in.Dst.Size != 4 {
			e.opI(rawisa.ANDI, r, r, int32(x86.SizeMask(in.Dst.Size)))
		}
		e.eArithFlags(arithFlags{a: rawisa.RegZero, b: a, r: r, sum: r, cin: 0xff, size: in.Dst.Size, sub: true}, live)
		e.writeDst(d, r)

	case x86.INC, x86.DEC:
		d := e.prepDst(in.Dst)
		a := e.readDst(d)
		r := e.tmp()
		one := e.tmp()
		e.opI(rawisa.ADDI, one, rawisa.RegZero, 1)
		sum := r
		sub := in.Op == x86.DEC
		if sub {
			e.op3(rawisa.SUB, r, a, one)
		} else {
			e.op3(rawisa.ADD, r, a, one)
		}
		if in.Dst.Size != 4 {
			sum = r
			m := e.tmp()
			e.opI(rawisa.ANDI, m, r, int32(x86.SizeMask(in.Dst.Size)))
			r = m
		}
		e.eArithFlags(arithFlags{a: a, b: one, r: r, sum: sum, cin: 0xff, size: in.Dst.Size, sub: sub},
			live&^x86.FlagCF)
		e.writeDst(d, r)

	case x86.SHL, x86.SHR, x86.SAR:
		if in.Src.Kind != x86.KImm {
			return false // count in CL: optimizing tier / assist
		}
		count := uint32(in.Src.Imm) & 31
		if count == 0 {
			return true
		}
		e.tShiftImm(in, count, live)

	case x86.CDQ:
		e.opI(rawisa.SRAI, hostReg(x86.EDX), hostReg(x86.EAX), 31)

	case x86.CWDE:
		if in.OpSize == 2 { // CBW: AX = sext8(AL)
			al := e.readReg8(0)
			t := e.tmp()
			e.opI(rawisa.SLLI, t, al, 24)
			e.opI(rawisa.SRAI, t, t, 24)
			e.writeReg16(x86.EAX, t)
		} else { // CWDE: EAX = sext16(AX)
			eax := hostReg(x86.EAX)
			e.opI(rawisa.SLLI, eax, eax, 16)
			e.opI(rawisa.SRAI, eax, eax, 16)
		}

	case x86.PUSH:
		v := e.readVal(in.Dst)
		e.push32(v)

	case x86.POP:
		v := e.pop32()
		e.writeDst(e.prepDst(in.Dst), v)

	case x86.LEAVE:
		sp, bp := hostReg(x86.ESP), hostReg(x86.EBP)
		e.move(sp, bp)
		v := e.pop32()
		e.move(bp, v)

	case x86.CALL:
		next := e.tmp()
		e.loadImm(next, in.Next())
		e.push32(next)
		e.emit(rawisa.Inst{Op: rawisa.CHAIN, Target: in.BranchTarget()})
		e.kind, e.target, e.fall, e.ended = ExitCall, in.BranchTarget(), in.Next(), true

	case x86.CALLIND:
		tgt := e.readVal(in.Src)
		next := e.tmp()
		e.loadImm(next, in.Next())
		e.push32(next)
		e.emit(rawisa.Inst{Op: rawisa.EXITR, Rs: tgt})
		e.kind, e.fall, e.ended = ExitIndirect, in.Next(), true

	case x86.RET:
		t := e.pop32()
		if in.Dst.Kind == x86.KImm && in.Dst.Imm != 0 {
			sp := hostReg(x86.ESP)
			e.addImm(sp, sp, in.Dst.Imm)
		}
		e.emit(rawisa.Inst{Op: rawisa.EXITR, Rs: t})
		e.kind, e.ended = ExitRet, true

	case x86.JMP:
		e.emit(rawisa.Inst{Op: rawisa.CHAIN, Target: in.BranchTarget()})
		e.kind, e.target, e.ended = ExitFall, in.BranchTarget(), true

	case x86.JMPIND:
		t := e.readVal(in.Src)
		e.emit(rawisa.Inst{Op: rawisa.EXITR, Rs: t})
		e.kind, e.ended = ExitIndirect, true

	case x86.JCC:
		t := e.eCondTest(in.Cond)
		brOp := rawisa.BNE
		if in.Cond&1 != 0 {
			brOp = rawisa.BEQ
		}
		br := e.branchOver(brOp, t, rawisa.RegZero)
		e.emit(rawisa.Inst{Op: rawisa.CHAIN, Target: in.Next()})
		e.bind(br)
		e.emit(rawisa.Inst{Op: rawisa.CHAIN, Target: in.BranchTarget()})
		e.kind = ExitBranch
		e.target, e.fall = in.BranchTarget(), in.Next()
		e.back = in.BranchTarget() <= in.Addr
		e.ended = true

	case x86.SETCC:
		t := e.eCondTest(in.Cond)
		r := e.tmp()
		e.op3(rawisa.SLTU, r, rawisa.RegZero, t)
		if in.Cond&1 != 0 {
			e.opI(rawisa.XORI, r, r, 1)
		}
		e.writeDst(e.prepDst(in.Dst), r)

	case x86.CMOVCC:
		t := e.eCondTest(in.Cond)
		brOp := rawisa.BEQ // skip when base cond false
		if in.Cond&1 != 0 {
			brOp = rawisa.BNE
		}
		br := e.branchOver(brOp, t, rawisa.RegZero)
		v := e.readVal(in.Src)
		e.writeDst(e.prepDst(in.Dst), v)
		e.bind(br)

	case x86.CLC:
		e.opI(rawisa.ANDI, fr, fr, int32(allFlagBits&^x86.FlagCF))
	case x86.STC:
		e.opI(rawisa.ORI, fr, fr, int32(x86.FlagCF))
	case x86.CMC:
		e.opI(rawisa.XORI, fr, fr, int32(x86.FlagCF))
	case x86.CLD:
		e.opI(rawisa.ANDI, fr, fr, int32(allFlagBits&^x86.FlagDF))
	case x86.STD:
		e.opI(rawisa.ORI, fr, fr, int32(x86.FlagDF))

	case x86.INT:
		if in.Dst.Imm != 0x80 {
			return false
		}
		e.emit(rawisa.Inst{Op: rawisa.SYSC})
		e.emit(rawisa.Inst{Op: rawisa.CHAIN, Target: in.Next()})
		e.kind, e.target, e.ended = ExitFall, in.Next(), true

	case x86.NOPOP:
		// nothing

	default:
		return false
	}
	return true
}

// tAddSub is the template for ADD/ADC/SUB/SBB/CMP, mirroring
// lowerAddSub including its exact flag-helper inputs.
func (e *emitter) tAddSub(in *x86.Inst, live uint32) {
	size := in.Dst.Size
	d := e.prepDst(in.Dst)
	a := e.readDst(d)
	b := e.readVal(in.Src)
	sub := in.Op == x86.SUB || in.Op == x86.SBB || in.Op == x86.CMP
	withCarry := in.Op == x86.ADC || in.Op == x86.SBB

	cin := uint8(0xff)
	if withCarry {
		cin = e.tmp()
		e.opI(rawisa.ANDI, cin, fr, 1)
	}

	var r, sum uint8
	if sub {
		sum = e.tmp()
		e.op3(rawisa.SUB, sum, a, b)
		r = sum
		if withCarry {
			r = e.tmp()
			e.op3(rawisa.SUB, r, sum, cin)
		}
	} else {
		sum = e.tmp()
		e.op3(rawisa.ADD, sum, a, b)
		r = sum
		if withCarry {
			r = e.tmp()
			e.op3(rawisa.ADD, r, sum, cin)
		}
	}
	masked := r
	if size != 4 {
		masked = e.tmp()
		e.opI(rawisa.ANDI, masked, r, int32(x86.SizeMask(size)))
	}
	fsum := sum
	if size != 4 {
		fsum = r
	}
	e.eArithFlags(arithFlags{a: a, b: b, r: masked, sum: fsum, cin: cin, size: size, sub: sub}, live)
	if in.Op != x86.CMP {
		e.writeDst(d, masked)
	}
}

// tLogic is the template for AND/OR/XOR/TEST.
func (e *emitter) tLogic(in *x86.Inst, live uint32) {
	d := e.prepDst(in.Dst)
	a := e.readDst(d)
	b := e.readVal(in.Src)
	r := e.tmp()
	switch in.Op {
	case x86.AND, x86.TEST:
		e.op3(rawisa.AND, r, a, b)
	case x86.OR:
		e.op3(rawisa.OR, r, a, b)
	case x86.XOR:
		e.op3(rawisa.XOR, r, a, b)
	}
	e.eLogicFlags(r, in.Dst.Size, live)
	if in.Op != x86.TEST {
		e.writeDst(d, r)
	}
}

// tShiftImm is the template for SHL/SHR/SAR with a nonzero immediate
// count, mirroring lowerShiftImm + shiftFlags.
func (e *emitter) tShiftImm(in *x86.Inst, count uint32, live uint32) {
	size := in.Dst.Size
	bits := uint32(size) * 8
	d := e.prepDst(in.Dst)
	a := e.readDst(d)
	r := e.tmp()
	cf := e.tmp()

	isShl, isSar := false, false
	switch in.Op {
	case x86.SHL:
		isShl = true
		raw := e.tmp()
		e.opI(rawisa.SLLI, raw, a, int32(count))
		if size == 4 {
			e.move(r, raw)
			e.opI(rawisa.SRLI, cf, a, int32(32-count))
			e.opI(rawisa.ANDI, cf, cf, 1)
		} else {
			e.opI(rawisa.ANDI, r, raw, int32(x86.SizeMask(size)))
			e.opI(rawisa.SRLI, cf, raw, int32(bits))
			e.opI(rawisa.ANDI, cf, cf, 1)
		}
	case x86.SHR:
		e.opI(rawisa.SRLI, r, a, int32(count))
		e.opI(rawisa.SRLI, cf, a, int32(count-1))
		e.opI(rawisa.ANDI, cf, cf, 1)
	case x86.SAR:
		isSar = true
		src := a
		if size != 4 {
			se := e.tmp()
			e.opI(rawisa.SLLI, se, a, int32(32-bits))
			e.opI(rawisa.SRAI, se, se, int32(32-bits))
			src = se
		}
		if count >= bits && size != 4 {
			e.opI(rawisa.SRAI, r, src, 31)
		} else {
			e.opI(rawisa.SRAI, r, src, int32(count))
		}
		if size != 4 {
			e.opI(rawisa.ANDI, r, r, int32(x86.SizeMask(size)))
		}
		c := count - 1
		if c > 31 {
			c = 31
		}
		e.opI(rawisa.SRAI, cf, src, int32(c))
		e.opI(rawisa.ANDI, cf, cf, 1)
	}
	e.tShiftFlags(a, r, cf, size, live, isShl, isSar)
	e.writeDst(d, r)
}

// tShiftFlags materializes the live flags of an immediate shift
// (shiftFlags in IR form).
func (e *emitter) tShiftFlags(a, r, cf uint8, size uint8, live uint32, isShl, isSar bool) {
	live &= x86.FlagsArith
	if live == 0 {
		return
	}
	e.clearFlags(live)
	if live&x86.FlagCF != 0 {
		t := e.ftmp()
		e.move(t, cf)
		e.orFlag(t)
	}
	if live&x86.FlagOF != 0 && !isSar {
		t := e.ftmp()
		if isShl {
			switch size {
			case 1:
				e.opI(rawisa.SRLI, t, r, 7)
			case 2:
				e.opI(rawisa.SRLI, t, r, 15)
			default:
				e.opI(rawisa.SRLI, t, r, 31)
			}
			e.opI(rawisa.ANDI, t, t, 1)
			e.op3(rawisa.XOR, t, t, cf)
		} else {
			switch size {
			case 1:
				e.opI(rawisa.SRLI, t, a, 7)
			case 2:
				e.opI(rawisa.SRLI, t, a, 15)
			default:
				e.opI(rawisa.SRLI, t, a, 31)
			}
			e.opI(rawisa.ANDI, t, t, 1)
		}
		e.eBit01(t, 11)
	}
	if live&x86.FlagZF != 0 {
		e.eZF(r)
	}
	if live&x86.FlagSF != 0 {
		e.eSF(r, size)
	}
	if live&x86.FlagPF != 0 {
		e.ePF(r)
	}
}
