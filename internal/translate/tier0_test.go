package translate

import (
	"errors"
	"testing"

	"tilevm/internal/guest"
	"tilevm/internal/rawisa"
	"tilevm/internal/x86"
)

// TestTier0TemplatesCommonSubset pins that the common integer/branch/
// mov subset really takes the template path (no silent fallback, which
// would erase the warmup win).
func TestTier0TemplatesCommonSubset(t *testing.T) {
	img := image(func(a *x86.Asm) {
		a.MovRegImm(x86.EBX, 0x12345678)
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.ImmOp(7, 4))
		a.ALU(x86.CMP, x86.RegOp(x86.EBX, 4), x86.ImmOp(0, 4))
		a.Jcc(x86.CondNE, "out")
		a.Label("out")
		exitWith(a)
	})
	p := guest.Load(img)
	tr := New(Options{Optimize: true})
	res, err := tr.TranslateTemplate(p.Mem, p.PC)
	if err != nil {
		t.Fatalf("TranslateTemplate: %v", err)
	}
	if res.Tier != TierTemplate {
		t.Errorf("Tier = %d, want TierTemplate", res.Tier)
	}
	if res.Optimized {
		t.Errorf("tier-0 result claims to be optimized")
	}
	if res.NumGuest == 0 || len(res.Code) == 0 {
		t.Errorf("empty template translation: %d guest insts, %d host insts", res.NumGuest, len(res.Code))
	}
	last := res.Code[len(res.Code)-1]
	if !last.IsBlockEnd() {
		t.Errorf("tier-0 block does not end in an exit: %v", last)
	}
	for _, in := range res.Code {
		for _, r := range []uint8{in.Rd, in.Rs, in.Rt} {
			if r >= rawisa.NumRegs {
				t.Fatalf("tier-0 emitted a virtual register %d in %v", r, in)
			}
		}
	}
}

// TestTier0FallsBackOnUntemplated pins the dispatch rule: a block with
// an un-templated instruction errors out of the template path and
// TranslateTier silently reroutes it to the optimizing tier.
func TestTier0FallsBackOnUntemplated(t *testing.T) {
	img := image(func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 6)
		a.MovRegImm(x86.ECX, 7)
		a.IMulRegRM(x86.EAX, x86.RegOp(x86.ECX, 4)) // no tier-0 template
		exitWith(a)
	})
	p := guest.Load(img)
	tr := New(Options{Optimize: true})
	if _, err := tr.TranslateTemplate(p.Mem, p.PC); !errors.Is(err, ErrUntemplated) {
		t.Fatalf("TranslateTemplate err = %v, want ErrUntemplated", err)
	}
	res, err := tr.TranslateTier(p.Mem, p.PC, true)
	if err != nil {
		t.Fatalf("TranslateTier: %v", err)
	}
	if res.Tier != TierOptimizing {
		t.Errorf("fallback Tier = %d, want TierOptimizing", res.Tier)
	}
	if !res.Optimized {
		t.Errorf("fallback result not optimized")
	}
}

// TestTier0TierChoiceDisabled pins that TranslateTier with tier0 off is
// exactly the optimizing pipeline.
func TestTier0TierChoiceDisabled(t *testing.T) {
	img := image(func(a *x86.Asm) { exitWith(a) })
	p := guest.Load(img)
	tr := New(Options{Optimize: true})
	res, err := tr.TranslateTier(p.Mem, p.PC, false)
	if err != nil {
		t.Fatalf("TranslateTier: %v", err)
	}
	if res.Tier != TierOptimizing {
		t.Errorf("Tier = %d, want TierOptimizing", res.Tier)
	}
}
