// Package translate is the binary translator: it discovers guest basic
// blocks, analyzes condition-code liveness (the paper's "extensive dead
// flag elimination"), lowers x86 instructions to the MIPS-like IR, and
// hands the result to the optimizer and register allocator. The output
// is a relocatable translated block ready for the code caches.
package translate

import (
	"fmt"

	"tilevm/internal/ir"
	"tilevm/internal/x86"
)

// CodeReader provides guest code bytes to the translator (implemented
// by guest.Memory).
type CodeReader interface {
	CodeWindow(addr uint32, n int) []byte
}

// MaxBlockInsts bounds the number of guest instructions per block.
const MaxBlockInsts = 32

// maxVRegsPerBlock stops block growth before the virtual register
// space (uint8) is exhausted; lowering one guest instruction never
// allocates more than ~24 temporaries.
const maxVRegsPerBlock = 190

// ExitKind classifies how a translated block ends, which drives the
// speculative translation engine's successor enqueueing policy.
type ExitKind uint8

const (
	// ExitFall is an unconditional fallthrough/jump to Target.
	ExitFall ExitKind = iota
	// ExitBranch is a conditional branch: Target taken, FallTarget not.
	ExitBranch
	// ExitCall is a direct call: Target is the callee, FallTarget the
	// return site (return-predictor hint, low priority).
	ExitCall
	// ExitIndirect is a register-indirect jump or indirect call; the
	// successor is unknown at translation time. For indirect calls
	// FallTarget still holds the return site.
	ExitIndirect
	// ExitRet is a function return (successor via return predictor).
	ExitRet
)

func (k ExitKind) String() string {
	switch k {
	case ExitFall:
		return "fall"
	case ExitBranch:
		return "branch"
	case ExitCall:
		return "call"
	case ExitIndirect:
		return "indirect"
	case ExitRet:
		return "ret"
	}
	return "?"
}

// Block is a translated block: the IR (later finalized host code) plus
// the control-flow metadata the runtime engine needs.
type Block struct {
	*ir.Block
	Kind       ExitKind
	Target     uint32 // taken/call/jump target (ExitFall/Branch/Call)
	FallTarget uint32 // fallthrough or call-return site
	// BackwardTaken reports whether a conditional branch jumps
	// backwards (static prediction: predict taken).
	BackwardTaken bool
}

// Error is a translation failure.
type Error struct {
	Addr   uint32
	Reason string
}

func (e *Error) Error() string {
	return fmt.Sprintf("translate: at %#x: %s", e.Addr, e.Reason)
}

// DiscoverBlock decodes the guest basic block starting at addr:
// instructions up to and including the first control transfer, capped
// at MaxBlockInsts.
func DiscoverBlock(mem CodeReader, addr uint32) ([]x86.Inst, error) {
	return discoverBlock(mem, addr, MaxBlockInsts)
}

func discoverBlock(mem CodeReader, addr uint32, cap int) ([]x86.Inst, error) {
	var insts []x86.Inst
	pc := addr
	for len(insts) < cap {
		window := mem.CodeWindow(pc, x86.MaxInstLen+4)
		in, err := x86.Decode(window, pc)
		if err != nil {
			if len(insts) == 0 {
				return nil, &Error{Addr: addr, Reason: err.Error()}
			}
			// A decodable prefix followed by garbage: end the block
			// before the bad instruction; if control reaches it the
			// runtime will fault there.
			return insts, nil
		}
		insts = append(insts, in)
		if in.EndsBlock() {
			break
		}
		pc = in.Next()
	}
	return insts, nil
}

// Options controls translation.
type Options struct {
	// Optimize enables the optimizer passes (the paper's Figure 8
	// comparison runs with this off and on).
	Optimize bool
	// ConservativeFlags disables the cross-block flag liveness
	// lookahead, forcing all arithmetic flags live at block exits
	// (ablation knob).
	ConservativeFlags bool
}

// Translator translates guest code into IR blocks. It is stateless
// apart from configuration and may be shared by multiple translation
// slave tiles (each call is independent).
type Translator struct {
	Opts Options
}

// New returns a translator with the given options.
func New(opts Options) *Translator { return &Translator{Opts: opts} }

// Translate builds the translated block starting at addr (IR form,
// before register allocation). Most callers want TranslateFinal.
func (t *Translator) Translate(mem CodeReader, addr uint32) (*Block, error) {
	return t.translate(mem, addr, MaxBlockInsts)
}

func (t *Translator) translate(mem CodeReader, addr uint32, cap int) (*Block, error) {
	insts, err := discoverBlock(mem, addr, cap)
	if err != nil {
		return nil, err
	}
	live := flagLiveness(insts, mem, t.Opts.ConservativeFlags)
	lo := newLowerer(addr)
	for i := range insts {
		if lo.bl.VRegsInUse() > maxVRegsPerBlock && i < len(insts)-1 && !insts[i].EndsBlock() {
			// Out of temporaries: end the block early with a chain to
			// the next instruction.
			lo.endEarly(insts[i].Addr)
			insts = insts[:i]
			break
		}
		if err := lo.lower(&insts[i], live[i]); err != nil {
			return nil, err
		}
	}
	last := insts[len(insts)-1]
	end := last.Next()
	if !last.EndsBlock() && !lo.ended {
		// Block hit the size cap: chain to the next instruction.
		lo.bl.Chain(end)
		lo.kind, lo.target = ExitFall, end
	}
	blk, err := lo.finish(end-addr, len(insts))
	if err != nil {
		return nil, &Error{Addr: addr, Reason: err.Error()}
	}
	return blk, nil
}
