package workload

import "sort"

// The eleven SpecInt 2000 stand-ins (252.eon is omitted, as in the
// paper). Parameters are calibrated so each profile reproduces the
// qualitative behaviour the paper reports for its namesake:
//
//   - gzip/bzip2/mcf/parser: small instruction working sets that fit
//     the L1 code cache → low slowdown (the 7-15× band).
//   - gcc/crafty/vortex: instruction working sets far beyond the L1
//     (and L1.5) code cache with little loop reuse → high L2
//     code-cache access rates and the 90-110× band; these are also the
//     ones speculation can hurt (manager congestion).
//   - vpr/perlbmk/gap/twolf: in between.
//   - mcf (and to a degree twolf/bzip2): data-bound — a pointer-chase
//     or large-array working set that overflows one 32KB L2 data bank
//     but profits from four (Figures 9/10).
//
// EXPERIMENTS.md records the measured-vs-paper comparison per figure.
var profiles = []Profile{
	{
		Name: "164.gzip", Seed: 164,
		Funcs: 10, BlocksPerFunc: 6, InstsPerBlock: 10, LoopIters: 14,
		Phases: 4, CallsPerPhase: 40, HotFuncs: 8,
		DataBytes: 48 * 1024, MemFrac: 0.30, Memcpy: true,
	},
	{
		Name: "175.vpr", Seed: 175,
		Funcs: 80, BlocksPerFunc: 8, InstsPerBlock: 9, LoopIters: 1,
		Phases: 3, CallsPerPhase: 300, HotFuncs: 50, IndirectFrac: 0.10,
		DataBytes: 16 * 1024, MemFrac: 0.25,
	},
	{
		Name: "176.gcc", Seed: 176,
		Funcs: 200, BlocksPerFunc: 10, InstsPerBlock: 8, LoopIters: 1,
		Phases: 3, CallsPerPhase: 480, HotFuncs: 120, IndirectFrac: 0.20,
		DataBytes: 16 * 1024, MemFrac: 0.22, CallDepth: 2,
	},
	{
		Name: "181.mcf", Seed: 181,
		Funcs: 8, BlocksPerFunc: 5, InstsPerBlock: 10, LoopIters: 40,
		Phases: 2, CallsPerPhase: 30, HotFuncs: 6,
		DataBytes: 96 * 1024, MemFrac: 0.45, PointerChase: true,
	},
	{
		Name: "186.crafty", Seed: 186,
		Funcs: 160, BlocksPerFunc: 9, InstsPerBlock: 9, LoopIters: 1,
		Phases: 3, CallsPerPhase: 440, HotFuncs: 100, IndirectFrac: 0.12,
		DataBytes: 16 * 1024, MemFrac: 0.22, CallDepth: 4,
	},
	{
		Name: "197.parser", Seed: 197,
		Funcs: 26, BlocksPerFunc: 6, InstsPerBlock: 10, LoopIters: 6,
		Phases: 4, CallsPerPhase: 50, HotFuncs: 12,
		DataBytes: 32 * 1024, MemFrac: 0.35, PointerChase: true,
	},
	{
		Name: "253.perlbmk", Seed: 253,
		Funcs: 110, BlocksPerFunc: 8, InstsPerBlock: 9, LoopIters: 1,
		Phases: 3, CallsPerPhase: 340, HotFuncs: 65, IndirectFrac: 0.30,
		DataBytes: 16 * 1024, MemFrac: 0.25, CallDepth: 2,
	},
	{
		Name: "254.gap", Seed: 254,
		Funcs: 75, BlocksPerFunc: 8, InstsPerBlock: 10, LoopIters: 2,
		Phases: 3, CallsPerPhase: 260, HotFuncs: 48, IndirectFrac: 0.08,
		DataBytes: 32 * 1024, MemFrac: 0.28,
	},
	{
		Name: "255.vortex", Seed: 255,
		Funcs: 230, BlocksPerFunc: 10, InstsPerBlock: 8, LoopIters: 1,
		Phases: 3, CallsPerPhase: 520, HotFuncs: 140, IndirectFrac: 0.15,
		DataBytes: 16 * 1024, MemFrac: 0.25, CallDepth: 2,
	},
	{
		Name: "256.bzip2", Seed: 256,
		Funcs: 9, BlocksPerFunc: 6, InstsPerBlock: 11, LoopIters: 16,
		Phases: 3, CallsPerPhase: 40, HotFuncs: 7,
		DataBytes: 80 * 1024, MemFrac: 0.35, Memcpy: true,
	},
	{
		Name: "300.twolf", Seed: 300,
		Funcs: 55, BlocksPerFunc: 8, InstsPerBlock: 10, LoopIters: 2,
		Phases: 3, CallsPerPhase: 240, HotFuncs: 36,
		DataBytes: 40 * 1024, MemFrac: 0.32, PointerChase: true,
	},
}

// Profiles returns all benchmark profiles in SpecInt numbering order.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName finds a profile.
func ByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists the profile names in order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
