// Package workload generates synthetic SpecInt-like guest programs:
// real x86 machine code whose structural parameters (static code
// working set, per-phase instruction locality, data working set and
// access pattern, branchiness, call depth, indirect-branch rate) are
// calibrated per benchmark so the translation system behaves the way
// the paper's SpecInt 2000 runs behave (see DESIGN.md §2 for the
// substitution argument).
//
// Every program is deterministic (seeded), runs to completion, and
// accumulates a checksum in EBX that it returns through exit(), so the
// same binary can be verified across the reference interpreter, the
// Pentium III baseline model, and the parallel translator.
package workload

import (
	"fmt"
	"math/rand"

	"tilevm/internal/guest"
	"tilevm/internal/x86"
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string
	Seed int64

	// Code shape.
	Funcs         int // number of generated functions
	BlocksPerFunc int // basic-block chain length per function body
	InstsPerBlock int // straight-line instructions per block
	LoopIters     int // inner-loop trips per function call
	CallDepth     int // extra nested call levels from some functions

	// Drive.
	Phases        int     // program phases (hot-set rotations)
	CallsPerPhase int     // function calls per phase
	HotFuncs      int     // size of the per-phase hot function set
	IndirectFrac  float64 // fraction of call sites dispatched via table

	// Data.
	DataBytes    int     // data working set
	PointerChase bool    // random ring chase vs strided access
	MemFrac      float64 // fraction of block instructions touching memory
	Memcpy       bool    // sprinkle REP MOVSD buffer copies
}

// layout constants within the data segment (all offsets from ESI).
const (
	tableOff = 0x0    // indirect-call table (256 slots)
	copyOff  = 0x800  // memcpy staging buffer
	ringOff  = 0x1000 // pointer-chase ring (chase profiles: DataBytes long)
	arrayOff = 0x1000 // strided array (non-chase profiles)

	// For pointer-chase profiles the strided array lives above the
	// ring so stores cannot clobber the chase pointers; it is kept
	// small so the data working set is dominated by the chase.
	chaseArraySpan = 16 * 1024
)

// arrayBase returns the strided-array offset and span for the profile.
func (p Profile) arrayBase() (off, span int) {
	if p.PointerChase {
		return ringOff + p.DataBytes, chaseArraySpan
	}
	return arrayOff, p.DataBytes
}

// Build generates the guest image.
func (p Profile) Build() *guest.Image {
	r := rand.New(rand.NewSource(p.Seed))
	a := x86.NewAsm(guest.DefaultCodeBase)
	dataBase := uint32(guest.DefaultHeapBase)

	// ---- driver ----
	a.MovRegImm(x86.ESI, dataBase)
	a.MovRegImm(x86.EDI, dataBase+ringOff)
	a.MovRegImm(x86.EBX, 0)
	a.Cld()

	hotStride := 0
	if p.Phases > 1 && p.Funcs > p.HotFuncs {
		hotStride = (p.Funcs - p.HotFuncs) / (p.Phases - 1)
	}
	for phase := 0; phase < p.Phases; phase++ {
		base := phase * hotStride
		for call := 0; call < p.CallsPerPhase; call++ {
			f := base + r.Intn(p.HotFuncs)
			if f >= p.Funcs {
				f = p.Funcs - 1
			}
			if r.Float64() < p.IndirectFrac {
				// Register-indirect dispatch through the function
				// table: unresolvable for the speculative translator.
				a.MovRegImm(x86.EDX, uint32(f))
				a.CallMem(x86.MemIdx(x86.ESI, x86.EDX, 4, tableOff))
			} else {
				a.Call(fname(f))
			}
		}
	}
	a.ALU(x86.AND, x86.RegOp(x86.EBX, 4), x86.ImmOp(0x7f, 4))
	a.MovRegImm(x86.EAX, 1)
	a.Int(0x80)

	// ---- functions ----
	for f := 0; f < p.Funcs; f++ {
		p.emitFunc(a, r, f)
	}

	code := a.Bytes()

	// ---- data segments ----
	data := p.buildData(a)

	return &guest.Image{
		Name:     p.Name,
		Entry:    guest.DefaultCodeBase,
		CodeBase: guest.DefaultCodeBase,
		Code:     code,
		Segments: []guest.Segment{{Addr: dataBase, Data: data}},
	}
}

func fname(f int) string { return fmt.Sprintf("f%d", f) }

// emitFunc generates one function: a counted loop over a chain of
// basic blocks with data-dependent internal branches, a configurable
// mix of memory traffic, and optional nested calls.
func (p Profile) emitFunc(a *x86.Asm, r *rand.Rand, f int) {
	a.Label(fname(f))
	a.Push(x86.EBP)
	a.MovRegReg(x86.EBP, x86.ESP)
	a.ALU(x86.SUB, x86.RegOp(x86.ESP, 4), x86.ImmOp(16, 4))
	a.MovMemImm(x86.Mem(x86.EBP, -4), uint32(p.LoopIters))

	loop := fmt.Sprintf("f%d_loop", f)
	a.Label(loop)
	for b := 0; b < p.BlocksPerFunc; b++ {
		p.emitBlock(a, r, f, b)
	}
	// Nested call chain: functions near the front of a depth window
	// call the next function.
	if p.CallDepth > 0 && f%3 == 0 && f+1 < p.Funcs && depthOf(f, 3) < p.CallDepth {
		a.Call(fname(f + 1))
	}
	// dec dword [ebp-4]; jnz loop
	a.Raw(0xFF, 0x4D, 0xFC)
	a.Jcc(x86.CondNE, loop)

	a.Leave()
	a.Ret()
}

// depthOf bounds nested call chains: the chain f → f+1 → f+2 … only
// continues while consecutive indices satisfy the f%3==0 entry rule
// rarely, giving shallow trees; this helper caps pathological chains.
func depthOf(f, k int) int {
	d := 0
	for f%k == 0 && f > 0 {
		f /= k
		d++
	}
	return d
}

// emitBlock generates one basic block of the body: InstsPerBlock
// instructions followed by a data-dependent forward branch over a
// small alternative block (so control flow is branchy but always
// converges).
func (p Profile) emitBlock(a *x86.Asm, r *rand.Rand, f, b int) {
	scratch := []x86.Reg{x86.EAX, x86.ECX, x86.EDX}
	reg := func() x86.Reg { return scratch[r.Intn(len(scratch))] }

	for i := 0; i < p.InstsPerBlock; i++ {
		if r.Float64() < p.MemFrac {
			p.emitMemOp(a, r, reg)
			continue
		}
		switch r.Intn(7) {
		case 0:
			a.ALU(x86.ADD, x86.RegOp(reg(), 4), x86.RegOp(reg(), 4))
		case 1:
			a.ALU(x86.XOR, x86.RegOp(reg(), 4), x86.ImmOp(int32(r.Uint32()&0xffff), 4))
		case 2:
			a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(reg(), 4))
		case 3:
			a.ShiftImm(x86.SHL, x86.RegOp(reg(), 4), uint8(1+r.Intn(7)))
		case 4:
			a.Lea(reg(), x86.MemIdx(x86.EBX, reg(), 2, int32(r.Intn(64))))
		case 5:
			a.IMulRegRMImm(reg(), x86.RegOp(reg(), 4), int32(3+r.Intn(13)))
		case 6:
			a.ALU(x86.SUB, x86.RegOp(reg(), 4), x86.ImmOp(int32(r.Intn(255)), 4))
		}
	}

	// Data-dependent fork: skip a short alternative on odd checksum.
	skip := fmt.Sprintf("f%d_b%d_skip", f, b)
	a.TestImm(x86.RegOp(x86.EBX, 4), 1)
	a.Jcc(x86.CondNE, skip)
	a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.ImmOp(int32(b*13+7), 4))
	a.ShiftImm(x86.ROL, x86.RegOp(x86.EBX, 4), 1)
	a.Label(skip)
}

// emitMemOp generates one memory instruction respecting the profile's
// access pattern.
func (p Profile) emitMemOp(a *x86.Asm, r *rand.Rand, reg func() x86.Reg) {
	if p.PointerChase && r.Intn(3) == 0 {
		// Chase step plus a payload load from the current node.
		a.MovRegMem(x86.EDI, x86.Mem(x86.EDI, 0))
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.Mem(x86.EDI, 4))
		return
	}
	if p.Memcpy && r.Intn(40) == 0 {
		// Small buffer copy via REP MOVSD: save and restore the
		// global cursor registers around the string op.
		a.Push(x86.ESI)
		a.Push(x86.EDI)
		a.Lea(x86.EAX, x86.Mem(x86.ESI, copyOff))
		a.MovRegReg(x86.EDI, x86.EAX)
		a.Lea(x86.EAX, x86.Mem(x86.ESI, copyOff+0x200))
		a.Push(x86.ESI)
		a.MovRegReg(x86.ESI, x86.EAX)
		a.MovRegImm(x86.ECX, 16)
		a.RepMovsd()
		a.Pop(x86.ESI)
		a.Pop(x86.EDI)
		a.Pop(x86.ESI)
		return
	}
	base, span := p.arrayBase()
	span -= 64
	if span < 4 {
		span = 4
	}
	off := int32(base + r.Intn(span/4)*4)
	switch r.Intn(4) {
	case 0:
		a.MovRegMem(reg(), x86.Mem(x86.ESI, off))
	case 1:
		a.MovMemReg(x86.Mem(x86.ESI, off), reg())
	case 2:
		a.ALU(x86.ADD, x86.Mem(x86.ESI, off), x86.RegOp(reg(), 4))
	case 3:
		a.Movzx8(reg(), x86.Mem(x86.ESI, off))
	}
}

// buildData constructs the initialized data segment: the indirect-call
// table (function addresses, resolvable only after assembly) and the
// pointer-chase ring.
func (p Profile) buildData(a *x86.Asm) []byte {
	size := ringOff + p.DataBytes + chaseArraySpan + 4096
	data := make([]byte, size)

	// Function table.
	for f := 0; f < p.Funcs && f < 256; f++ {
		addr := a.LabelAddr(fname(f))
		put32(data, tableOff+f*4, addr)
	}

	// Pointer-chase ring: nodes every 64 bytes, shuffled into a single
	// cycle (a Sattolo permutation), each node's word 0 pointing at the
	// next node's guest address, word 1 a payload.
	if p.PointerChase {
		nodes := p.DataBytes / 64
		if nodes < 2 {
			nodes = 2
		}
		perm := make([]int, nodes)
		for i := range perm {
			perm[i] = i
		}
		r := rand.New(rand.NewSource(p.Seed ^ 0x5a5a))
		for i := nodes - 1; i > 0; i-- {
			j := r.Intn(i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		base := uint32(guest.DefaultHeapBase) + ringOff
		for i := 0; i < nodes; i++ {
			next := perm[i]
			put32(data, ringOff+i*64, base+uint32(next*64))
			put32(data, ringOff+i*64+4, uint32(i*2654435761))
		}
	}
	return data
}

func put32(b []byte, off int, v uint32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}
