package workload

import (
	"testing"

	"tilevm/internal/guest"
	"tilevm/internal/x86interp"
)

func TestAllProfilesRunToCompletion(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			img := p.Build()
			proc := guest.Load(img)
			it := x86interp.New(proc)
			exited, err := it.Run(50_000_000)
			if err != nil {
				t.Fatalf("run: %v (state %s)", err, proc.CPU.String())
			}
			if !exited {
				t.Fatalf("did not exit within budget; steps=%d", it.Steps)
			}
			if it.Steps < 20_000 {
				t.Errorf("dynamic length %d too short to be meaningful", it.Steps)
			}
			if it.Steps > 20_000_000 {
				t.Errorf("dynamic length %d too long for the figure suite", it.Steps)
			}
			t.Logf("%s: %d guest insts, code %d bytes, exit %d",
				p.Name, it.Steps, len(img.Code), proc.Kern.ExitCode)
		})
	}
}

func TestBuildDeterministic(t *testing.T) {
	p, ok := ByName("176.gcc")
	if !ok {
		t.Fatal("missing profile")
	}
	a := p.Build()
	b := p.Build()
	if string(a.Code) != string(b.Code) {
		t.Error("code generation not deterministic")
	}
	if len(a.Segments) != len(b.Segments) || string(a.Segments[0].Data) != string(b.Segments[0].Data) {
		t.Error("data generation not deterministic")
	}
}

func TestCodeSizeBands(t *testing.T) {
	// The paper's capacity effects depend on which benchmarks exceed
	// the 32KB L1 code cache once translated (~6× expansion of x86
	// bytes). Check the x86 code sizes are in the intended bands.
	small := map[string]bool{"164.gzip": true, "181.mcf": true, "256.bzip2": true, "197.parser": true}
	large := map[string]bool{"176.gcc": true, "186.crafty": true, "255.vortex": true}
	for _, p := range Profiles() {
		img := p.Build()
		kb := len(img.Code) / 1024
		switch {
		case small[p.Name] && kb > 12:
			t.Errorf("%s: code %dKB, want small (<12KB)", p.Name, kb)
		case large[p.Name] && kb < 40:
			t.Errorf("%s: code %dKB, want large (>40KB)", p.Name, kb)
		}
	}
}

func TestNamesAndLookup(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("expected 11 profiles, got %d", len(names))
	}
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("252.eon"); ok {
		t.Error("252.eon should not exist (omitted in the paper)")
	}
}

func TestIndirectTableMatchesFunctions(t *testing.T) {
	p, _ := ByName("253.perlbmk") // highest indirect fraction
	img := p.Build()
	// The table at the head of the data segment must hold the code
	// addresses of f0..fN (the indirect call sites jump through it).
	data := img.Segments[0].Data
	for f := 0; f < p.Funcs && f < 256; f++ {
		got := uint32(data[f*4]) | uint32(data[f*4+1])<<8 |
			uint32(data[f*4+2])<<16 | uint32(data[f*4+3])<<24
		if got < img.CodeBase || got >= img.CodeBase+uint32(len(img.Code)) {
			t.Fatalf("table[%d] = %#x outside code", f, got)
		}
	}
}

func TestChaseRingIsSingleCycle(t *testing.T) {
	p, _ := ByName("181.mcf")
	img := p.Build()
	data := img.Segments[0].Data
	base := img.Segments[0].Addr
	nodes := p.DataBytes / 64
	read32 := func(off int) uint32 {
		return uint32(data[off]) | uint32(data[off+1])<<8 |
			uint32(data[off+2])<<16 | uint32(data[off+3])<<24
	}
	// Walk the ring from node 0: it must visit every node exactly once
	// before returning (a single cycle — otherwise the chase working
	// set would silently shrink).
	seen := map[uint32]bool{}
	const ringOffLocal = 0x1000
	cur := base + ringOffLocal
	for i := 0; i < nodes; i++ {
		if seen[cur] {
			t.Fatalf("ring revisits %#x after %d steps (want %d)", cur, i, nodes)
		}
		seen[cur] = true
		cur = read32(int(cur - base))
	}
	if cur != base+ringOffLocal {
		t.Fatalf("ring does not close: ended at %#x", cur)
	}
}
