package x86

import (
	"encoding/binary"
	"fmt"
)

// Asm is a small x86 assembler used by tests and the synthetic workload
// generator. It emits 32-bit protected-mode machine code with label
// fix-ups for relative branches.
type Asm struct {
	Base   uint32 // guest virtual address of the first emitted byte
	buf    []byte
	labels map[string]uint32
	fixups []fixup
}

type fixup struct {
	pos   int // offset of the rel32 field in buf
	label string
	next  uint32 // address of the instruction after the branch
}

// NewAsm starts assembling at the given base address.
func NewAsm(base uint32) *Asm {
	return &Asm{Base: base, labels: make(map[string]uint32)}
}

// PC returns the address of the next emitted byte.
func (a *Asm) PC() uint32 { return a.Base + uint32(len(a.buf)) }

// Len returns the number of bytes emitted so far.
func (a *Asm) Len() int { return len(a.buf) }

// Label binds a name to the current position.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		panic("x86: duplicate label " + name)
	}
	a.labels[name] = a.PC()
}

// LabelAddr returns a bound label's address; it panics if unbound.
func (a *Asm) LabelAddr(name string) uint32 {
	addr, ok := a.labels[name]
	if !ok {
		panic("x86: unbound label " + name)
	}
	return addr
}

// Bytes resolves all fix-ups and returns the machine code.
func (a *Asm) Bytes() []byte {
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			panic("x86: undefined label " + f.label)
		}
		binary.LittleEndian.PutUint32(a.buf[f.pos:], target-f.next)
	}
	a.fixups = a.fixups[:0]
	return a.buf
}

func (a *Asm) db(bs ...byte) { a.buf = append(a.buf, bs...) }

func (a *Asm) d32(v uint32) {
	a.buf = append(a.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (a *Asm) d16(v uint16) { a.buf = append(a.buf, byte(v), byte(v>>8)) }

// modRM emits a ModRM byte (and SIB/displacement) addressing rm with
// the given /reg field. rm must be KReg or KMem.
func (a *Asm) modRM(regField uint8, rm Operand) {
	switch rm.Kind {
	case KReg:
		a.db(0xC0 | regField<<3 | uint8(rm.Reg))
	case KMem:
		a.memModRM(regField, rm)
	default:
		panic(fmt.Sprintf("x86: bad rm operand %v", rm))
	}
}

func (a *Asm) memModRM(regField uint8, m Operand) {
	needSIB := m.Index != NoIndex || m.Base == int8(ESP)
	var mod, rmBits uint8
	dispSize := 0
	switch {
	case m.Base == NoIndex && !needSIB:
		mod, rmBits, dispSize = 0, 5, 4
	case m.Base == NoIndex && needSIB:
		mod, rmBits, dispSize = 0, 4, 4
	default:
		switch {
		case m.Disp == 0 && m.Base != int8(EBP):
			mod, dispSize = 0, 0
		case m.Disp >= -128 && m.Disp <= 127:
			mod, dispSize = 1, 1
		default:
			mod, dispSize = 2, 4
		}
		if needSIB {
			rmBits = 4
		} else {
			rmBits = uint8(m.Base)
		}
	}
	a.db(mod<<6 | regField<<3 | rmBits)
	if needSIB {
		var ss uint8
		switch m.Scale {
		case 0, 1:
			ss = 0
		case 2:
			ss = 1
		case 4:
			ss = 2
		case 8:
			ss = 3
		default:
			panic("x86: bad scale")
		}
		idx := uint8(4)
		if m.Index != NoIndex {
			if m.Index == int8(ESP) {
				panic("x86: ESP cannot be an index")
			}
			idx = uint8(m.Index)
		}
		base := uint8(5)
		if m.Base != NoIndex {
			base = uint8(m.Base)
		}
		a.db(ss<<6 | idx<<3 | base)
	}
	switch dispSize {
	case 1:
		a.db(byte(m.Disp))
	case 4:
		a.d32(uint32(m.Disp))
	}
}

// Mem builds a [base+disp] operand.
func Mem(base Reg, disp int32) Operand { return MemOp(int8(base), NoIndex, 1, disp, 4) }

// MemIdx builds a [base+index*scale+disp] operand.
func MemIdx(base, index Reg, scale uint8, disp int32) Operand {
	return MemOp(int8(base), int8(index), scale, disp, 4)
}

// MemAbs builds an absolute [disp] operand.
func MemAbs(disp uint32) Operand { return MemOp(NoIndex, NoIndex, 1, int32(disp), 4) }

// aluBase maps ALU ops to their 0x00-family base opcode and /reg field.
var aluBase = map[Op]struct {
	base byte
	ext  uint8
}{
	ADD: {0x00, 0}, OR: {0x08, 1}, ADC: {0x10, 2}, SBB: {0x18, 3},
	AND: {0x20, 4}, SUB: {0x28, 5}, XOR: {0x30, 6}, CMP: {0x38, 7},
}

// ALU emits an ALU op (ADD/OR/ADC/SBB/AND/SUB/XOR/CMP) with a
// register/memory destination and register/immediate/memory source.
// Exactly one of dst/src may be memory.
func (a *Asm) ALU(op Op, dst, src Operand) {
	e, ok := aluBase[op]
	if !ok {
		panic(fmt.Sprintf("x86: %v is not a 2-operand ALU op", op))
	}
	switch {
	case src.Kind == KImm:
		if src.Imm >= -128 && src.Imm <= 127 && dst.Size == 4 {
			a.db(0x83)
			a.modRM(e.ext, dst)
			a.db(byte(src.Imm))
		} else if dst.Size == 1 {
			a.db(0x80)
			a.modRM(e.ext, dst)
			a.db(byte(src.Imm))
		} else {
			a.db(0x81)
			a.modRM(e.ext, dst)
			a.d32(uint32(src.Imm))
		}
	case dst.Kind == KReg && src.Kind != KNone:
		if dst.Size == 1 {
			a.db(e.base + 2)
		} else {
			a.db(e.base + 3)
		}
		a.modRM(uint8(dst.Reg), src)
	case dst.Kind == KMem && src.Kind == KReg:
		if src.Size == 1 {
			a.db(e.base)
		} else {
			a.db(e.base + 1)
		}
		a.modRM(uint8(src.Reg), dst)
	default:
		panic("x86: bad ALU operand combination")
	}
}

// MovRegImm emits MOV r32, imm32.
func (a *Asm) MovRegImm(r Reg, v uint32) {
	a.db(0xB8 + byte(r))
	a.d32(v)
}

// MovRegReg emits MOV r32, r32.
func (a *Asm) MovRegReg(dst, src Reg) {
	a.db(0x89)
	a.db(0xC0 | byte(src)<<3 | byte(dst))
}

// MovRegMem emits MOV r32, m32.
func (a *Asm) MovRegMem(dst Reg, m Operand) {
	a.db(0x8B)
	a.modRM(uint8(dst), m)
}

// MovMemReg emits MOV m32, r32.
func (a *Asm) MovMemReg(m Operand, src Reg) {
	a.db(0x89)
	a.modRM(uint8(src), m)
}

// MovMemImm emits MOV m32, imm32.
func (a *Asm) MovMemImm(m Operand, v uint32) {
	a.db(0xC7)
	a.modRM(0, m)
	a.d32(v)
}

// MovRegMem8 emits MOV r8, m8 (low byte registers).
func (a *Asm) MovRegMem8(dst Reg, m Operand) {
	a.db(0x8A)
	a.modRM(uint8(dst), m)
}

// MovMemReg8 emits MOV m8, r8.
func (a *Asm) MovMemReg8(m Operand, src Reg) {
	a.db(0x88)
	a.modRM(uint8(src), m)
}

// Movzx8 emits MOVZX r32, m8/r8.
func (a *Asm) Movzx8(dst Reg, src Operand) {
	a.db(0x0F, 0xB6)
	a.modRM(uint8(dst), src)
}

// Movsx8 emits MOVSX r32, m8/r8.
func (a *Asm) Movsx8(dst Reg, src Operand) {
	a.db(0x0F, 0xBE)
	a.modRM(uint8(dst), src)
}

// Lea emits LEA r32, m.
func (a *Asm) Lea(dst Reg, m Operand) {
	a.db(0x8D)
	a.memModRM(uint8(dst), m)
}

// Push emits PUSH r32.
func (a *Asm) Push(r Reg) { a.db(0x50 + byte(r)) }

// PushImm emits PUSH imm32.
func (a *Asm) PushImm(v uint32) {
	a.db(0x68)
	a.d32(v)
}

// Pop emits POP r32.
func (a *Asm) Pop(r Reg) { a.db(0x58 + byte(r)) }

// IncReg emits INC r32.
func (a *Asm) IncReg(r Reg) { a.db(0x40 + byte(r)) }

// DecReg emits DEC r32.
func (a *Asm) DecReg(r Reg) { a.db(0x48 + byte(r)) }

// Neg emits NEG r/m32.
func (a *Asm) Neg(rm Operand) {
	a.db(0xF7)
	a.modRM(3, rm)
}

// Not emits NOT r/m32.
func (a *Asm) Not(rm Operand) {
	a.db(0xF7)
	a.modRM(2, rm)
}

// Test emits TEST r/m32, r32.
func (a *Asm) Test(rm Operand, r Reg) {
	a.db(0x85)
	a.modRM(uint8(r), rm)
}

// TestImm emits TEST r/m32, imm32.
func (a *Asm) TestImm(rm Operand, v uint32) {
	a.db(0xF7)
	a.modRM(0, rm)
	a.d32(v)
}

// ShiftImm emits SHL/SHR/SAR/ROL/ROR r/m32, imm8.
func (a *Asm) ShiftImm(op Op, rm Operand, count uint8) {
	ext := shiftExt(op)
	if count == 1 {
		a.db(0xD1)
		a.modRM(ext, rm)
		return
	}
	a.db(0xC1)
	a.modRM(ext, rm)
	a.db(count)
}

// ShiftCL emits SHL/SHR/SAR/ROL/ROR r/m32, CL.
func (a *Asm) ShiftCL(op Op, rm Operand) {
	a.db(0xD3)
	a.modRM(shiftExt(op), rm)
}

func shiftExt(op Op) uint8 {
	switch op {
	case ROL:
		return 0
	case ROR:
		return 1
	case RCL:
		return 2
	case RCR:
		return 3
	case SHL:
		return 4
	case SHR:
		return 5
	case SAR:
		return 7
	}
	panic(fmt.Sprintf("x86: %v is not a shift", op))
}

// IMulRegRM emits IMUL r32, r/m32.
func (a *Asm) IMulRegRM(dst Reg, src Operand) {
	a.db(0x0F, 0xAF)
	a.modRM(uint8(dst), src)
}

// IMulRegRMImm emits IMUL r32, r/m32, imm32.
func (a *Asm) IMulRegRMImm(dst Reg, src Operand, v int32) {
	if v >= -128 && v <= 127 {
		a.db(0x6B)
		a.modRM(uint8(dst), src)
		a.db(byte(v))
		return
	}
	a.db(0x69)
	a.modRM(uint8(dst), src)
	a.d32(uint32(v))
}

// MulRM emits MUL r/m32 (EDX:EAX = EAX * rm).
func (a *Asm) MulRM(rm Operand) {
	a.db(0xF7)
	a.modRM(4, rm)
}

// DivRM emits DIV r/m32.
func (a *Asm) DivRM(rm Operand) {
	a.db(0xF7)
	a.modRM(6, rm)
}

// IDivRM emits IDIV r/m32.
func (a *Asm) IDivRM(rm Operand) {
	a.db(0xF7)
	a.modRM(7, rm)
}

// Cdq emits CDQ.
func (a *Asm) Cdq() { a.db(0x99) }

// Nop emits NOP.
func (a *Asm) Nop() { a.db(0x90) }

// Hlt emits HLT.
func (a *Asm) Hlt() { a.db(0xF4) }

// Int emits INT imm8.
func (a *Asm) Int(vector byte) { a.db(0xCD, vector) }

// Ret emits RET.
func (a *Asm) Ret() { a.db(0xC3) }

// RetImm emits RET imm16.
func (a *Asm) RetImm(n uint16) {
	a.db(0xC2)
	a.d16(n)
}

// Leave emits LEAVE.
func (a *Asm) Leave() { a.db(0xC9) }

// Call emits CALL rel32 to a label.
func (a *Asm) Call(label string) {
	a.db(0xE8)
	a.rel32(label)
}

// CallReg emits CALL r32.
func (a *Asm) CallReg(r Reg) { a.db(0xFF, 0xD0|byte(r)) }

// CallMem emits CALL m32.
func (a *Asm) CallMem(m Operand) {
	a.db(0xFF)
	a.modRM(2, m)
}

// Jmp emits JMP rel32 to a label.
func (a *Asm) Jmp(label string) {
	a.db(0xE9)
	a.rel32(label)
}

// JmpReg emits JMP r32.
func (a *Asm) JmpReg(r Reg) { a.db(0xFF, 0xE0|byte(r)) }

// JmpMem emits JMP m32 (jump-table dispatch).
func (a *Asm) JmpMem(m Operand) {
	a.db(0xFF)
	a.modRM(4, m)
}

// Jcc emits a conditional rel32 jump to a label.
func (a *Asm) Jcc(c Cond, label string) {
	a.db(0x0F, 0x80+byte(c))
	a.rel32(label)
}

// Setcc emits SETcc r/m8.
func (a *Asm) Setcc(c Cond, rm Operand) {
	a.db(0x0F, 0x90+byte(c))
	a.modRM(0, rm)
}

// Cmovcc emits CMOVcc r32, r/m32.
func (a *Asm) Cmovcc(c Cond, dst Reg, src Operand) {
	a.db(0x0F, 0x40+byte(c))
	a.modRM(uint8(dst), src)
}

// Cld emits CLD.
func (a *Asm) Cld() { a.db(0xFC) }

// RepMovsd emits REP MOVSD.
func (a *Asm) RepMovsd() { a.db(0xF3, 0xA5) }

// RepStosd emits REP STOSD.
func (a *Asm) RepStosd() { a.db(0xF3, 0xAB) }

// Bswap emits BSWAP r32.
func (a *Asm) Bswap(r Reg) { a.db(0x0F, 0xC8+byte(r)) }

// Cwde emits CWDE (sign-extend AX into EAX).
func (a *Asm) Cwde() { a.db(0x98) }

// ShiftDoubleImm emits SHLD/SHRD r/m32, r32, imm8.
func (a *Asm) ShiftDoubleImm(op Op, rm Operand, r Reg, count uint8) {
	switch op {
	case SHLD:
		a.db(0x0F, 0xA4)
	case SHRD:
		a.db(0x0F, 0xAC)
	default:
		panic("x86: not a double shift")
	}
	a.modRM(uint8(r), rm)
	a.db(count)
}

// ShiftDoubleCL emits SHLD/SHRD r/m32, r32, CL.
func (a *Asm) ShiftDoubleCL(op Op, rm Operand, r Reg) {
	switch op {
	case SHLD:
		a.db(0x0F, 0xA5)
	case SHRD:
		a.db(0x0F, 0xAD)
	default:
		panic("x86: not a double shift")
	}
	a.modRM(uint8(r), rm)
}

// BtReg emits BT/BTS/BTR/BTC r/m32, r32.
func (a *Asm) BtReg(op Op, rm Operand, r Reg) {
	codes := map[Op]byte{BT: 0xA3, BTS: 0xAB, BTR: 0xB3, BTC: 0xBB}
	c, ok := codes[op]
	if !ok {
		panic("x86: not a bit-test op")
	}
	a.db(0x0F, c)
	a.modRM(uint8(r), rm)
}

// BtImm emits BT/BTS/BTR/BTC r/m32, imm8.
func (a *Asm) BtImm(op Op, rm Operand, bit uint8) {
	exts := map[Op]uint8{BT: 4, BTS: 5, BTR: 6, BTC: 7}
	e, ok := exts[op]
	if !ok {
		panic("x86: not a bit-test op")
	}
	a.db(0x0F, 0xBA)
	a.modRM(e, rm)
	a.db(bit)
}

// Bsf emits BSF r32, r/m32.
func (a *Asm) Bsf(dst Reg, src Operand) {
	a.db(0x0F, 0xBC)
	a.modRM(uint8(dst), src)
}

// Bsr emits BSR r32, r/m32.
func (a *Asm) Bsr(dst Reg, src Operand) {
	a.db(0x0F, 0xBD)
	a.modRM(uint8(dst), src)
}

// Cmpxchg emits CMPXCHG r/m32, r32.
func (a *Asm) Cmpxchg(rm Operand, r Reg) {
	a.db(0x0F, 0xB1)
	a.modRM(uint8(r), rm)
}

// Xadd emits XADD r/m32, r32.
func (a *Asm) Xadd(rm Operand, r Reg) {
	a.db(0x0F, 0xC1)
	a.modRM(uint8(r), rm)
}

// RepeCmpsd emits REPE CMPSD.
func (a *Asm) RepeCmpsd() { a.db(0xF3, 0xA7) }

// RepneScasb emits REPNE SCASB.
func (a *Asm) RepneScasb() { a.db(0xF2, 0xAE) }

// Raw appends literal bytes (data embedded in the code stream).
func (a *Asm) Raw(bs ...byte) { a.db(bs...) }

// Word32 appends a literal 32-bit little-endian word.
func (a *Asm) Word32(v uint32) { a.d32(v) }

func (a *Asm) rel32(label string) {
	a.fixups = append(a.fixups, fixup{pos: len(a.buf), label: label, next: a.PC() + 4})
	a.d32(0)
}
