package x86

import "fmt"

// DecodeError describes a byte sequence the decoder does not handle.
type DecodeError struct {
	Addr   uint32
	Opcode byte
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("x86: cannot decode at %#x (opcode %#02x): %s", e.Addr, e.Opcode, e.Reason)
}

// MaxInstLen is the architectural limit on instruction length.
const MaxInstLen = 15

type decoder struct {
	code []byte
	addr uint32
	pos  int
	err  error
}

func (d *decoder) fail(op byte, reason string) {
	if d.err == nil {
		d.err = &DecodeError{Addr: d.addr, Opcode: op, Reason: reason}
	}
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.code) || d.pos >= MaxInstLen+4 {
		d.fail(0, "truncated instruction")
		return 0
	}
	b := d.code[d.pos]
	d.pos++
	return b
}

func (d *decoder) u16() uint16 {
	lo := uint16(d.u8())
	hi := uint16(d.u8())
	return hi<<8 | lo
}

func (d *decoder) u32() uint32 {
	lo := uint32(d.u16())
	hi := uint32(d.u16())
	return hi<<16 | lo
}

func (d *decoder) s8() int32  { return int32(int8(d.u8())) }
func (d *decoder) s32() int32 { return int32(d.u32()) }

// imm reads an immediate of the operand size, sign-extending to 32 bits.
func (d *decoder) imm(size uint8) int32 {
	switch size {
	case 1:
		return d.s8()
	case 2:
		return int32(int16(d.u16()))
	default:
		return d.s32()
	}
}

// modRM decodes a ModRM byte (plus SIB/displacement) into the /reg
// field and the r/m operand at the given access size.
func (d *decoder) modRM(size uint8) (reg Reg, rm Operand) {
	b := d.u8()
	mod := b >> 6
	reg = Reg(b >> 3 & 7)
	rmBits := b & 7

	if mod == 3 {
		return reg, RegOp(Reg(rmBits), size)
	}

	m := Operand{Kind: KMem, Size: size, Base: NoIndex, Index: NoIndex, Scale: 1}
	switch {
	case rmBits == 4: // SIB
		sib := d.u8()
		scaleBits := sib >> 6
		index := sib >> 3 & 7
		base := sib & 7
		if index != 4 {
			m.Index = int8(index)
			m.Scale = 1 << scaleBits
		}
		if base == 5 && mod == 0 {
			m.Disp = d.s32()
		} else {
			m.Base = int8(base)
		}
	case rmBits == 5 && mod == 0:
		m.Disp = d.s32()
	default:
		m.Base = int8(rmBits)
	}
	switch mod {
	case 1:
		m.Disp += d.s8()
	case 2:
		m.Disp += d.s32()
	}
	return reg, m
}

// grp1Ops maps the /reg field of opcode group 1 (0x80/0x81/0x83).
var grp1Ops = [8]Op{ADD, OR, ADC, SBB, AND, SUB, XOR, CMP}

// grp2Ops maps the /reg field of the shift group (0xC0/0xC1/0xD0-0xD3).
var grp2Ops = [8]Op{ROL, ROR, RCL, RCR, SHL, SHR, SHL, SAR}

// Decode decodes the instruction at the start of code, which begins at
// guest address addr. The slice should extend at least MaxInstLen bytes
// past the instruction start when available.
func Decode(code []byte, addr uint32) (Inst, error) {
	d := &decoder{code: code, addr: addr}
	in := Inst{Addr: addr}
	opSize := uint8(4)

	// Prefixes.
	var op byte
prefixes:
	for {
		op = d.u8()
		switch op {
		case 0x66:
			opSize = 2
		case 0xF3:
			in.Rep = true
		case 0xF2:
			in.Rep = true
			in.RepNE = true
		case 0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65:
			// Segment overrides: flat memory model, ignored.
		case 0x67:
			d.fail(op, "16-bit address size not supported")
			break prefixes
		case 0xF0:
			// LOCK: single-threaded guest, ignored.
		default:
			break prefixes
		}
		if d.err != nil {
			break
		}
	}
	if d.err != nil {
		return in, d.err
	}
	in.OpSize = opSize

	switch {
	// ALU families: 0x00-0x3D with the classic 6-opcode pattern
	// (the op&7 ∈ {6,7} slots are segment push/pop and BCD ops,
	// which fall through to "unsupported").
	case op < 0x40 && op&7 < 6:
		alu := grp1Ops[op>>3&7]
		switch op & 7 {
		case 0: // r/m8, r8
			reg, rm := d.modRM(1)
			in.Op, in.Dst, in.Src = alu, rm, RegOp(reg, 1)
		case 1: // r/m, r
			reg, rm := d.modRM(opSize)
			in.Op, in.Dst, in.Src = alu, rm, RegOp(reg, opSize)
		case 2: // r8, r/m8
			reg, rm := d.modRM(1)
			in.Op, in.Dst, in.Src = alu, RegOp(reg, 1), rm
		case 3: // r, r/m
			reg, rm := d.modRM(opSize)
			in.Op, in.Dst, in.Src = alu, RegOp(reg, opSize), rm
		case 4: // AL, imm8
			in.Op, in.Dst, in.Src = alu, RegOp(EAX, 1), ImmOp(d.s8(), 1)
		case 5: // eAX, imm
			in.Op, in.Dst, in.Src = alu, RegOp(EAX, opSize), ImmOp(d.imm(opSize), opSize)
		}

	case op >= 0x40 && op <= 0x47:
		in.Op, in.Dst = INC, RegOp(Reg(op-0x40), opSize)
	case op >= 0x48 && op <= 0x4F:
		in.Op, in.Dst = DEC, RegOp(Reg(op-0x48), opSize)
	case op >= 0x50 && op <= 0x57:
		in.Op, in.Dst = PUSH, RegOp(Reg(op-0x50), 4)
	case op >= 0x58 && op <= 0x5F:
		in.Op, in.Dst = POP, RegOp(Reg(op-0x58), 4)

	case op == 0x68:
		in.Op, in.Dst = PUSH, ImmOp(d.s32(), 4)
	case op == 0x6A:
		in.Op, in.Dst = PUSH, ImmOp(d.s8(), 4)
	case op == 0x69: // IMUL r, r/m, imm32
		reg, rm := d.modRM(opSize)
		in.Op, in.Dst, in.Src, in.Src2 = IMUL2, RegOp(reg, opSize), rm, ImmOp(d.imm(opSize), opSize)
	case op == 0x6B: // IMUL r, r/m, imm8
		reg, rm := d.modRM(opSize)
		in.Op, in.Dst, in.Src, in.Src2 = IMUL2, RegOp(reg, opSize), rm, ImmOp(d.s8(), 1)

	case op >= 0x70 && op <= 0x7F:
		in.Op, in.Cond = JCC, Cond(op&15)
		in.Src = ImmOp(d.s8(), 1)

	case op == 0x80: // grp1 r/m8, imm8
		reg, rm := d.modRM(1)
		in.Op, in.Dst, in.Src = grp1Ops[reg], rm, ImmOp(d.s8(), 1)
	case op == 0x81:
		reg, rm := d.modRM(opSize)
		in.Op, in.Dst, in.Src = grp1Ops[reg], rm, ImmOp(d.imm(opSize), opSize)
	case op == 0x83: // grp1 r/m, imm8 sign-extended
		reg, rm := d.modRM(opSize)
		in.Op, in.Dst, in.Src = grp1Ops[reg], rm, ImmOp(d.s8(), 1)

	case op == 0x84:
		reg, rm := d.modRM(1)
		in.Op, in.Dst, in.Src = TEST, rm, RegOp(reg, 1)
	case op == 0x85:
		reg, rm := d.modRM(opSize)
		in.Op, in.Dst, in.Src = TEST, rm, RegOp(reg, opSize)
	case op == 0x86:
		reg, rm := d.modRM(1)
		in.Op, in.Dst, in.Src = XCHG, rm, RegOp(reg, 1)
	case op == 0x87:
		reg, rm := d.modRM(opSize)
		in.Op, in.Dst, in.Src = XCHG, rm, RegOp(reg, opSize)

	case op == 0x88:
		reg, rm := d.modRM(1)
		in.Op, in.Dst, in.Src = MOV, rm, RegOp(reg, 1)
	case op == 0x89:
		reg, rm := d.modRM(opSize)
		in.Op, in.Dst, in.Src = MOV, rm, RegOp(reg, opSize)
	case op == 0x8A:
		reg, rm := d.modRM(1)
		in.Op, in.Dst, in.Src = MOV, RegOp(reg, 1), rm
	case op == 0x8B:
		reg, rm := d.modRM(opSize)
		in.Op, in.Dst, in.Src = MOV, RegOp(reg, opSize), rm
	case op == 0x8D:
		reg, rm := d.modRM(opSize)
		if rm.Kind != KMem {
			d.fail(op, "LEA with register source")
			break
		}
		in.Op, in.Dst, in.Src = LEA, RegOp(reg, opSize), rm
	case op == 0x8F:
		reg, rm := d.modRM(4)
		if reg != 0 {
			d.fail(op, "bad 0x8F extension")
			break
		}
		in.Op, in.Dst = POP, rm

	case op == 0x90:
		in.Op = NOPOP
	case op >= 0x91 && op <= 0x97:
		in.Op, in.Dst, in.Src = XCHG, RegOp(EAX, opSize), RegOp(Reg(op-0x90), opSize)
	case op == 0x98:
		in.Op = CWDE // CBW when the operand-size prefix selects 16 bits
	case op == 0x99:
		in.Op = CDQ
	case op == 0x9E:
		in.Op = SAHF
	case op == 0x9F:
		in.Op = LAHF

	case op == 0xA4 || op == 0xA5:
		in.Op = MOVS
		if op == 0xA4 {
			in.OpSize = 1
		}
	case op == 0xA6 || op == 0xA7:
		in.Op = CMPS
		if op == 0xA6 {
			in.OpSize = 1
		}
	case op == 0xA8:
		in.Op, in.Dst, in.Src = TEST, RegOp(EAX, 1), ImmOp(d.s8(), 1)
	case op == 0xA9:
		in.Op, in.Dst, in.Src = TEST, RegOp(EAX, opSize), ImmOp(d.imm(opSize), opSize)
	case op == 0xAA || op == 0xAB:
		in.Op = STOS
		if op == 0xAA {
			in.OpSize = 1
		}
	case op == 0xAC || op == 0xAD:
		in.Op = LODS
		if op == 0xAC {
			in.OpSize = 1
		}
	case op == 0xAE || op == 0xAF:
		in.Op = SCAS
		if op == 0xAE {
			in.OpSize = 1
		}

	case op >= 0xB0 && op <= 0xB7:
		in.Op, in.Dst, in.Src = MOV, RegOp(Reg(op-0xB0), 1), ImmOp(d.s8(), 1)
	case op >= 0xB8 && op <= 0xBF:
		in.Op, in.Dst, in.Src = MOV, RegOp(Reg(op-0xB8), opSize), ImmOp(d.imm(opSize), opSize)

	case op == 0xC0 || op == 0xC1: // shift r/m, imm8
		size := uint8(1)
		if op == 0xC1 {
			size = opSize
		}
		reg, rm := d.modRM(size)
		in.Op, in.Dst, in.Src = grp2Ops[reg], rm, ImmOp(int32(d.u8()&31), 1)
	case op == 0xD0 || op == 0xD1: // shift r/m, 1
		size := uint8(1)
		if op == 0xD1 {
			size = opSize
		}
		reg, rm := d.modRM(size)
		in.Op, in.Dst, in.Src = grp2Ops[reg], rm, ImmOp(1, 1)
	case op == 0xD2 || op == 0xD3: // shift r/m, CL
		size := uint8(1)
		if op == 0xD3 {
			size = opSize
		}
		reg, rm := d.modRM(size)
		in.Op, in.Dst, in.Src = grp2Ops[reg], rm, RegOp(ECX, 1)

	case op == 0xC2:
		in.Op, in.Dst = RET, ImmOp(int32(d.u16()), 2)
	case op == 0xC3:
		in.Op = RET
	case op == 0xC6:
		reg, rm := d.modRM(1)
		if reg != 0 {
			d.fail(op, "bad 0xC6 extension")
			break
		}
		in.Op, in.Dst, in.Src = MOV, rm, ImmOp(d.s8(), 1)
	case op == 0xC7:
		reg, rm := d.modRM(opSize)
		if reg != 0 {
			d.fail(op, "bad 0xC7 extension")
			break
		}
		in.Op, in.Dst, in.Src = MOV, rm, ImmOp(d.imm(opSize), opSize)
	case op == 0xC9:
		in.Op = LEAVE
	case op == 0xCD:
		in.Op, in.Dst = INT, ImmOp(int32(d.u8()), 1)

	case op == 0xE8:
		in.Op, in.Src = CALL, ImmOp(d.s32(), 4)
	case op == 0xE9:
		in.Op, in.Src = JMP, ImmOp(d.s32(), 4)
	case op == 0xEB:
		in.Op, in.Src = JMP, ImmOp(d.s8(), 1)

	case op == 0xF4:
		in.Op = HLT
	case op == 0xF5:
		in.Op = CMC
	case op == 0xF8:
		in.Op = CLC
	case op == 0xF9:
		in.Op = STC
	case op == 0xFC:
		in.Op = CLD
	case op == 0xFD:
		in.Op = STD

	case op == 0xF6 || op == 0xF7: // group 3
		size := uint8(1)
		if op == 0xF7 {
			size = opSize
		}
		reg, rm := d.modRM(size)
		switch reg {
		case 0, 1: // TEST r/m, imm
			in.Op, in.Dst, in.Src = TEST, rm, ImmOp(d.imm(size), size)
		case 2:
			in.Op, in.Dst = NOT, rm
		case 3:
			in.Op, in.Dst = NEG, rm
		case 4:
			in.Op, in.Src = MUL, rm
			in.OpSize = size
		case 5:
			in.Op, in.Src = IMUL, rm
			in.OpSize = size
		case 6:
			in.Op, in.Src = DIV, rm
			in.OpSize = size
		case 7:
			in.Op, in.Src = IDIV, rm
			in.OpSize = size
		}

	case op == 0xFE: // group 4
		reg, rm := d.modRM(1)
		switch reg {
		case 0:
			in.Op, in.Dst = INC, rm
		case 1:
			in.Op, in.Dst = DEC, rm
		default:
			d.fail(op, "bad 0xFE extension")
		}
	case op == 0xFF: // group 5
		reg, rm := d.modRM(4)
		switch reg {
		case 0:
			in.Op, in.Dst = INC, rm
			in.Dst.Size = opSize
		case 1:
			in.Op, in.Dst = DEC, rm
			in.Dst.Size = opSize
		case 2:
			in.Op, in.Src = CALLIND, rm
		case 4:
			in.Op, in.Src = JMPIND, rm
		case 6:
			in.Op, in.Dst = PUSH, rm
		default:
			d.fail(op, "bad 0xFF extension")
		}

	case op == 0x0F:
		d.decode0F(&in, opSize)

	default:
		d.fail(op, "unsupported opcode")
	}

	if d.err != nil {
		return in, d.err
	}
	if d.pos > MaxInstLen {
		d.fail(op, "instruction too long")
		return in, d.err
	}
	in.Len = uint8(d.pos)
	return in, nil
}

// decode0F handles the two-byte opcode map.
func (d *decoder) decode0F(in *Inst, opSize uint8) {
	op := d.u8()
	switch {
	case op >= 0x40 && op <= 0x4F: // CMOVcc
		reg, rm := d.modRM(opSize)
		in.Op, in.Cond, in.Dst, in.Src = CMOVCC, Cond(op&15), RegOp(reg, opSize), rm
	case op >= 0x80 && op <= 0x8F: // Jcc rel32
		in.Op, in.Cond = JCC, Cond(op&15)
		in.Src = ImmOp(d.s32(), 4)
	case op >= 0x90 && op <= 0x9F: // SETcc r/m8
		_, rm := d.modRM(1)
		in.Op, in.Cond, in.Dst = SETCC, Cond(op&15), rm
	case op == 0xA3 || op == 0xAB || op == 0xB3 || op == 0xBB:
		// BT/BTS/BTR/BTC r/m, r
		reg, rm := d.modRM(opSize)
		ops := map[byte]Op{0xA3: BT, 0xAB: BTS, 0xB3: BTR, 0xBB: BTC}
		in.Op, in.Dst, in.Src = ops[op], rm, RegOp(reg, opSize)
	case op == 0xBA: // BT group with imm8 bit offset
		reg, rm := d.modRM(opSize)
		ops := [8]Op{INVALID, INVALID, INVALID, INVALID, BT, BTS, BTR, BTC}
		if ops[reg] == INVALID {
			d.fail(op, "bad 0F BA extension")
			break
		}
		in.Op, in.Dst, in.Src = ops[reg], rm, ImmOp(int32(d.u8()), 1)
	case op == 0xA4 || op == 0xAC: // SHLD/SHRD r/m, r, imm8
		reg, rm := d.modRM(opSize)
		in.Op = SHLD
		if op == 0xAC {
			in.Op = SHRD
		}
		in.Dst, in.Src, in.Src2 = rm, RegOp(reg, opSize), ImmOp(int32(d.u8()&31), 1)
	case op == 0xA5 || op == 0xAD: // SHLD/SHRD r/m, r, CL
		reg, rm := d.modRM(opSize)
		in.Op = SHLD
		if op == 0xAD {
			in.Op = SHRD
		}
		in.Dst, in.Src, in.Src2 = rm, RegOp(reg, opSize), RegOp(ECX, 1)
	case op == 0xBC: // BSF r, r/m
		reg, rm := d.modRM(opSize)
		in.Op, in.Dst, in.Src = BSF, RegOp(reg, opSize), rm
	case op == 0xBD: // BSR r, r/m
		reg, rm := d.modRM(opSize)
		in.Op, in.Dst, in.Src = BSR, RegOp(reg, opSize), rm
	case op == 0xB0 || op == 0xB1: // CMPXCHG r/m, r
		size := uint8(1)
		if op == 0xB1 {
			size = opSize
		}
		reg, rm := d.modRM(size)
		in.Op, in.Dst, in.Src = CMPXCHG, rm, RegOp(reg, size)
	case op == 0xC0 || op == 0xC1: // XADD r/m, r
		size := uint8(1)
		if op == 0xC1 {
			size = opSize
		}
		reg, rm := d.modRM(size)
		in.Op, in.Dst, in.Src = XADD, rm, RegOp(reg, size)
	case op == 0xAF: // IMUL r, r/m
		reg, rm := d.modRM(opSize)
		in.Op, in.Dst, in.Src = IMUL2, RegOp(reg, opSize), rm
	case op == 0xB6: // MOVZX r, r/m8
		reg, rm := d.modRM(opSize)
		rm.Size = 1
		in.Op, in.Dst, in.Src = MOVZX, RegOp(reg, opSize), rm
	case op == 0xB7: // MOVZX r, r/m16
		reg, rm := d.modRM(opSize)
		rm.Size = 2
		in.Op, in.Dst, in.Src = MOVZX, RegOp(reg, opSize), rm
	case op == 0xBE:
		reg, rm := d.modRM(opSize)
		rm.Size = 1
		in.Op, in.Dst, in.Src = MOVSX, RegOp(reg, opSize), rm
	case op == 0xBF:
		reg, rm := d.modRM(opSize)
		rm.Size = 2
		in.Op, in.Dst, in.Src = MOVSX, RegOp(reg, opSize), rm
	case op >= 0xC8 && op <= 0xCF:
		in.Op, in.Dst = BSWAP, RegOp(Reg(op-0xC8), 4)
	case op == 0x1F: // multi-byte NOP
		_, _ = d.modRM(opSize)
		in.Op = NOPOP
	default:
		d.fail(op, "unsupported 0F opcode")
	}
}
