package x86

import (
	"testing"
)

// decodeOne decodes a single instruction and fails the test on error.
func decodeOne(t *testing.T, code []byte, addr uint32) Inst {
	t.Helper()
	in, err := Decode(code, addr)
	if err != nil {
		t.Fatalf("Decode(% x): %v", code, err)
	}
	if int(in.Len) != len(code) {
		t.Fatalf("Decode(% x): len = %d, want %d (%v)", code, in.Len, len(code), in)
	}
	return in
}

func TestDecodeMovRegImm(t *testing.T) {
	a := NewAsm(0x1000)
	a.MovRegImm(ECX, 0xdeadbeef)
	in := decodeOne(t, a.Bytes(), 0x1000)
	if in.Op != MOV || in.Dst.Reg != ECX || uint32(in.Src.Imm) != 0xdeadbeef {
		t.Errorf("got %v", in)
	}
}

func TestDecodeALUForms(t *testing.T) {
	cases := []struct {
		emit func(*Asm)
		want string
	}{
		{func(a *Asm) { a.ALU(ADD, RegOp(EAX, 4), RegOp(EBX, 4)) }, "add eax, ebx"},
		{func(a *Asm) { a.ALU(SUB, RegOp(ESI, 4), ImmOp(100, 4)) }, "sub esi, 0x64"},
		{func(a *Asm) { a.ALU(CMP, RegOp(EDX, 4), Mem(EBP, -8)) }, "cmp edx, [ebp-0x8]"},
		{func(a *Asm) { a.ALU(XOR, Mem(ESP, 4), RegOp(EDI, 4)) }, "xor [esp+0x4], edi"},
		{func(a *Asm) { a.ALU(AND, RegOp(EAX, 4), ImmOp(-16, 4)) }, "and eax, 0xfffffff0"},
		{func(a *Asm) { a.ALU(ADC, RegOp(ECX, 4), RegOp(ECX, 4)) }, "adc ecx, ecx"},
		{func(a *Asm) { a.ALU(SBB, RegOp(EDX, 4), ImmOp(1, 4)) }, "sbb edx, 0x1"},
		{func(a *Asm) { a.ALU(OR, RegOp(EBX, 4), MemIdx(EAX, ECX, 4, 0x10)) }, "or ebx, [eax+ecx*4+0x10]"},
	}
	for _, c := range cases {
		a := NewAsm(0)
		c.emit(a)
		in := decodeOne(t, a.Bytes(), 0)
		if got := in.String(); got != c.want {
			t.Errorf("decoded %q, want %q", got, c.want)
		}
	}
}

func TestDecodeSIBForms(t *testing.T) {
	// [ecx*8+0x40] with no base: SIB with base=5, mod=0.
	a := NewAsm(0)
	a.MovRegMem(EAX, MemOp(NoIndex, int8(ECX), 8, 0x40, 4))
	in := decodeOne(t, a.Bytes(), 0)
	if in.Src.Base != NoIndex || in.Src.Index != int8(ECX) || in.Src.Scale != 8 || in.Src.Disp != 0x40 {
		t.Errorf("got %+v", in.Src)
	}
	// [esp] requires SIB.
	a = NewAsm(0)
	a.MovRegMem(EBX, Mem(ESP, 0))
	in = decodeOne(t, a.Bytes(), 0)
	if in.Src.Base != int8(ESP) || in.Src.Index != NoIndex {
		t.Errorf("[esp]: got %+v", in.Src)
	}
	// [ebp] with mod=0 means disp32, so assembler must use disp8=0.
	a = NewAsm(0)
	a.MovRegMem(EBX, Mem(EBP, 0))
	in = decodeOne(t, a.Bytes(), 0)
	if in.Src.Base != int8(EBP) || in.Src.Disp != 0 {
		t.Errorf("[ebp]: got %+v", in.Src)
	}
	// Absolute address.
	a = NewAsm(0)
	a.MovRegMem(EBX, MemAbs(0x804f000))
	in = decodeOne(t, a.Bytes(), 0)
	if in.Src.Base != NoIndex || uint32(in.Src.Disp) != 0x804f000 {
		t.Errorf("abs: got %+v", in.Src)
	}
}

func TestDecodeBranches(t *testing.T) {
	a := NewAsm(0x8048000)
	a.Label("top")
	a.IncReg(EAX)
	a.Jcc(CondNE, "top")
	a.Jmp("top")
	code := a.Bytes()

	in := decodeOne(t, code[:1], 0x8048000)
	if in.Op != INC {
		t.Fatalf("got %v", in)
	}
	in, err := Decode(code[1:], 0x8048001)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != JCC || in.Cond != CondNE || in.BranchTarget() != 0x8048000 {
		t.Errorf("jcc: %v target %#x", in, in.BranchTarget())
	}
	in, err = Decode(code[1+int(in.Len):], in.Next())
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != JMP || in.BranchTarget() != 0x8048000 {
		t.Errorf("jmp: %v target %#x", in, in.BranchTarget())
	}
}

func TestDecodeShortJcc(t *testing.T) {
	// 0x74 0xFE = JE to itself.
	in := decodeOne(t, []byte{0x74, 0xFE}, 0x100)
	if in.Op != JCC || in.Cond != CondE || in.BranchTarget() != 0x100 {
		t.Errorf("got %v, target %#x", in, in.BranchTarget())
	}
}

func TestDecodeCallRet(t *testing.T) {
	a := NewAsm(0x1000)
	a.Call("f")
	a.Label("f")
	a.Ret()
	code := a.Bytes()
	in := decodeOne(t, code[:5], 0x1000)
	if in.Op != CALL || in.BranchTarget() != 0x1005 {
		t.Errorf("call: %v -> %#x", in, in.BranchTarget())
	}
	in = decodeOne(t, code[5:], 0x1005)
	if in.Op != RET {
		t.Errorf("ret: %v", in)
	}
	// RET imm16.
	a = NewAsm(0)
	a.RetImm(8)
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != RET || in.Dst.Imm != 8 {
		t.Errorf("ret 8: %v", in)
	}
}

func TestDecodeIndirect(t *testing.T) {
	a := NewAsm(0)
	a.JmpReg(EAX)
	in := decodeOne(t, a.Bytes(), 0)
	if in.Op != JMPIND || in.Src.Kind != KReg || in.Src.Reg != EAX {
		t.Errorf("jmp eax: %v", in)
	}
	a = NewAsm(0)
	a.JmpMem(MemIdx(EBX, ECX, 4, 0))
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != JMPIND || in.Src.Kind != KMem {
		t.Errorf("jmp [ebx+ecx*4]: %v", in)
	}
	a = NewAsm(0)
	a.CallReg(EDX)
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != CALLIND || in.Src.Reg != EDX {
		t.Errorf("call edx: %v", in)
	}
}

func TestDecodeGroup3(t *testing.T) {
	a := NewAsm(0)
	a.Neg(RegOp(EBX, 4))
	in := decodeOne(t, a.Bytes(), 0)
	if in.Op != NEG || in.Dst.Reg != EBX {
		t.Errorf("neg: %v", in)
	}
	a = NewAsm(0)
	a.MulRM(RegOp(ECX, 4))
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != MUL || in.Src.Reg != ECX || in.OpSize != 4 {
		t.Errorf("mul: %v", in)
	}
	a = NewAsm(0)
	a.IDivRM(RegOp(EDI, 4))
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != IDIV || in.Src.Reg != EDI {
		t.Errorf("idiv: %v", in)
	}
	a = NewAsm(0)
	a.TestImm(RegOp(EAX, 4), 0xff)
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != TEST || in.Src.Imm != 0xff {
		t.Errorf("test imm: %v", in)
	}
}

func TestDecodeShifts(t *testing.T) {
	a := NewAsm(0)
	a.ShiftImm(SHL, RegOp(EAX, 4), 4)
	in := decodeOne(t, a.Bytes(), 0)
	if in.Op != SHL || in.Src.Imm != 4 {
		t.Errorf("shl: %v", in)
	}
	a = NewAsm(0)
	a.ShiftImm(SAR, RegOp(EDX, 4), 1)
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != SAR || in.Src.Imm != 1 {
		t.Errorf("sar 1: %v", in)
	}
	a = NewAsm(0)
	a.ShiftCL(SHR, RegOp(EBX, 4))
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != SHR || in.Src.Kind != KReg || in.Src.Reg != ECX || in.Src.Size != 1 {
		t.Errorf("shr cl: %v", in)
	}
}

func TestDecodeIMulForms(t *testing.T) {
	a := NewAsm(0)
	a.IMulRegRM(EAX, RegOp(EBX, 4))
	in := decodeOne(t, a.Bytes(), 0)
	if in.Op != IMUL2 || in.Dst.Reg != EAX || in.Src.Reg != EBX || in.Src2.Kind != KNone {
		t.Errorf("imul r,rm: %v", in)
	}
	a = NewAsm(0)
	a.IMulRegRMImm(ECX, RegOp(EDX, 4), 1000)
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != IMUL2 || in.Src2.Imm != 1000 {
		t.Errorf("imul r,rm,imm: %v", in)
	}
	a = NewAsm(0)
	a.IMulRegRMImm(ECX, RegOp(EDX, 4), 3)
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != IMUL2 || in.Src2.Imm != 3 {
		t.Errorf("imul r,rm,imm8: %v", in)
	}
}

func TestDecodeStackOps(t *testing.T) {
	a := NewAsm(0)
	a.Push(EBP)
	a.Pop(EBP)
	a.PushImm(0x1234)
	a.Leave()
	code := a.Bytes()
	in := decodeOne(t, code[:1], 0)
	if in.Op != PUSH || in.Dst.Reg != EBP {
		t.Errorf("push: %v", in)
	}
	in = decodeOne(t, code[1:2], 1)
	if in.Op != POP || in.Dst.Reg != EBP {
		t.Errorf("pop: %v", in)
	}
	in = decodeOne(t, code[2:7], 2)
	if in.Op != PUSH || in.Dst.Imm != 0x1234 {
		t.Errorf("push imm: %v", in)
	}
	in = decodeOne(t, code[7:], 7)
	if in.Op != LEAVE {
		t.Errorf("leave: %v", in)
	}
}

func TestDecodeExtendAndConditionalOps(t *testing.T) {
	a := NewAsm(0)
	a.Movzx8(EAX, Mem(ESI, 0))
	in := decodeOne(t, a.Bytes(), 0)
	if in.Op != MOVZX || in.Src.Size != 1 || in.Dst.Size != 4 {
		t.Errorf("movzx: %v", in)
	}
	a = NewAsm(0)
	a.Setcc(CondG, RegOp(EAX, 1))
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != SETCC || in.Cond != CondG {
		t.Errorf("setg: %v", in)
	}
	a = NewAsm(0)
	a.Cmovcc(CondL, EBX, RegOp(ECX, 4))
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != CMOVCC || in.Cond != CondL || in.Dst.Reg != EBX {
		t.Errorf("cmovl: %v", in)
	}
	a = NewAsm(0)
	a.Bswap(EDX)
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != BSWAP || in.Dst.Reg != EDX {
		t.Errorf("bswap: %v", in)
	}
}

func TestDecodeStringOps(t *testing.T) {
	a := NewAsm(0)
	a.RepMovsd()
	in := decodeOne(t, a.Bytes(), 0)
	if in.Op != MOVS || !in.Rep || in.OpSize != 4 {
		t.Errorf("rep movsd: %v", in)
	}
	a = NewAsm(0)
	a.RepStosd()
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != STOS || !in.Rep || in.OpSize != 4 {
		t.Errorf("rep stosd: %v", in)
	}
	in = decodeOne(t, []byte{0xA4}, 0)
	if in.Op != MOVS || in.Rep || in.OpSize != 1 {
		t.Errorf("movsb: %v", in)
	}
}

func TestDecodeSyscall(t *testing.T) {
	a := NewAsm(0)
	a.Int(0x80)
	in := decodeOne(t, a.Bytes(), 0)
	if in.Op != INT || in.Dst.Imm != 0x80 {
		t.Errorf("int 0x80: %v", in)
	}
}

func TestDecodeLeaForms(t *testing.T) {
	a := NewAsm(0)
	a.Lea(EAX, MemIdx(EBX, ESI, 2, -4))
	in := decodeOne(t, a.Bytes(), 0)
	if in.Op != LEA || in.Src.Base != int8(EBX) || in.Src.Index != int8(ESI) ||
		in.Src.Scale != 2 || in.Src.Disp != -4 {
		t.Errorf("lea: %v (%+v)", in, in.Src)
	}
}

func TestDecodeRejectsUnsupported(t *testing.T) {
	bad := [][]byte{
		{0x0F, 0x05},       // SYSCALL (64-bit)
		{0xD8, 0xC0},       // x87
		{0x67, 0x8B, 0x00}, // 16-bit addressing
		{0xCC},             // INT3
		{},                 // empty
	}
	for _, code := range bad {
		if _, err := Decode(code, 0); err == nil {
			t.Errorf("Decode(% x) succeeded, want error", code)
		}
	}
}

func TestDecodeOperandSizePrefix(t *testing.T) {
	// 66 B8 34 12 = MOV AX, 0x1234
	in := decodeOne(t, []byte{0x66, 0xB8, 0x34, 0x12}, 0)
	if in.Op != MOV || in.Dst.Size != 2 || in.Src.Imm != 0x1234 {
		t.Errorf("mov ax: %v", in)
	}
}

func TestDecodeXchgAndNop(t *testing.T) {
	in := decodeOne(t, []byte{0x90}, 0)
	if in.Op != NOPOP {
		t.Errorf("nop: %v", in)
	}
	in = decodeOne(t, []byte{0x93}, 0) // XCHG EAX, EBX
	if in.Op != XCHG || in.Src.Reg != EBX {
		t.Errorf("xchg: %v", in)
	}
}

func TestDecodeCdqAndFlagsOps(t *testing.T) {
	for _, c := range []struct {
		b    byte
		want Op
	}{
		{0x99, CDQ}, {0xF8, CLC}, {0xF9, STC}, {0xF5, CMC},
		{0xFC, CLD}, {0xFD, STD}, {0x9E, SAHF}, {0x9F, LAHF}, {0xF4, HLT},
	} {
		in := decodeOne(t, []byte{c.b}, 0)
		if in.Op != c.want {
			t.Errorf("%#02x: got %v, want %v", c.b, in.Op, c.want)
		}
	}
}

func TestDecodeGroup5(t *testing.T) {
	a := NewAsm(0)
	a.db(0xFF, 0x30) // PUSH [eax]
	in := decodeOne(t, a.Bytes(), 0)
	if in.Op != PUSH || in.Dst.Kind != KMem {
		t.Errorf("push [eax]: %v", in)
	}
	a = NewAsm(0)
	a.db(0xFF, 0xC3) // INC ebx via group 5
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != INC || in.Dst.Reg != EBX {
		t.Errorf("inc ebx (ff/0): %v", in)
	}
}

func TestDecodeExtendedOps(t *testing.T) {
	cases := []struct {
		emit func(a *Asm)
		want string
	}{
		{func(a *Asm) { a.BtImm(BT, RegOp(EAX, 4), 5) }, "bt eax, 0x5"},
		{func(a *Asm) { a.BtReg(BTS, RegOp(EBX, 4), ECX) }, "bts ebx, ecx"},
		{func(a *Asm) { a.BtReg(BTR, Mem(ESI, 4), EDX) }, "btr [esi+0x4], edx"},
		{func(a *Asm) { a.BtImm(BTC, RegOp(EDI, 4), 31) }, "btc edi, 0x1f"},
		{func(a *Asm) { a.Bsf(EAX, RegOp(EBX, 4)) }, "bsf eax, ebx"},
		{func(a *Asm) { a.Bsr(ECX, Mem(EBP, -4)) }, "bsr ecx, [ebp-0x4]"},
		{func(a *Asm) { a.Cmpxchg(RegOp(EDX, 4), EBX) }, "cmpxchg edx, ebx"},
		{func(a *Asm) { a.Xadd(Mem(ESI, 0), EAX) }, "xadd [esi], eax"},
		{func(a *Asm) { a.Cwde() }, "cwde"},
		{func(a *Asm) { a.ShiftImm(RCL, RegOp(EAX, 4), 3) }, "rcl eax, 0x3"},
		{func(a *Asm) { a.ShiftImm(RCR, RegOp(EBX, 4), 1) }, "rcr ebx, 0x1"},
	}
	for _, c := range cases {
		a := NewAsm(0)
		c.emit(a)
		in := decodeOne(t, a.Bytes(), 0)
		if got := in.String(); got != c.want {
			t.Errorf("decoded %q, want %q", got, c.want)
		}
	}
}

func TestDecodeShiftDouble(t *testing.T) {
	a := NewAsm(0)
	a.ShiftDoubleImm(SHLD, RegOp(EAX, 4), EBX, 12)
	in := decodeOne(t, a.Bytes(), 0)
	if in.Op != SHLD || in.Dst.Reg != EAX || in.Src.Reg != EBX || in.Src2.Imm != 12 {
		t.Errorf("shld: %v (%+v)", in, in)
	}
	a = NewAsm(0)
	a.ShiftDoubleCL(SHRD, RegOp(ECX, 4), EDX)
	in = decodeOne(t, a.Bytes(), 0)
	if in.Op != SHRD || in.Src2.Kind != KReg || in.Src2.Reg != ECX {
		t.Errorf("shrd cl: %v", in)
	}
}

func TestDecodeRepPrefixes(t *testing.T) {
	in := decodeOne(t, []byte{0xF3, 0xA7}, 0) // REPE CMPSD
	if in.Op != CMPS || !in.Rep || in.RepNE {
		t.Errorf("repe cmpsd: %v rep=%v repne=%v", in, in.Rep, in.RepNE)
	}
	in = decodeOne(t, []byte{0xF2, 0xAE}, 0) // REPNE SCASB
	if in.Op != SCAS || !in.Rep || !in.RepNE || in.OpSize != 1 {
		t.Errorf("repne scasb: %v", in)
	}
}
