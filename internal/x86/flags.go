package x86

// Canonical EFLAGS semantics. The reference interpreter and the
// translator-generated host code must agree bit-for-bit, so where the
// architecture leaves a flag undefined we *define* it here and both
// sides implement the definition:
//
//   - logic ops (AND/OR/XOR/TEST): CF=OF=AF=0
//   - shifts with count==0: no flags change
//   - SHL: OF = MSB(result) XOR CF (the count==1 rule, applied always)
//   - SHR: OF = MSB(input)         (the count==1 rule, applied always)
//   - SAR: OF = 0
//   - ROL/ROR: only CF and OF change; OF per the count==1 rule
//   - MUL/IMUL: CF=OF = "upper half significant"; SF/ZF/PF from the
//     low result; AF=0
//   - DIV/IDIV: no flags change
//
// All helpers take and return full 32-bit register images; `size` is
// the operand width in bytes (1, 2 or 4).

var parityTable [256]uint32

func init() {
	for i := range parityTable {
		bits := 0
		for v := i; v != 0; v >>= 1 {
			bits += v & 1
		}
		if bits%2 == 0 {
			parityTable[i] = FlagPF
		}
	}
}

// SizeMask returns the value mask for an operand size.
func SizeMask(size uint8) uint32 {
	switch size {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	default:
		return 0xffffffff
	}
}

// SignBit returns the most-significant-bit mask for an operand size.
func SignBit(size uint8) uint32 { return SizeMask(size) &^ (SizeMask(size) >> 1) }

// szpFlags computes SF, ZF, PF of a result.
func szpFlags(r uint32, size uint8) uint32 {
	m := SizeMask(size)
	f := parityTable[r&0xff]
	if r&m == 0 {
		f |= FlagZF
	}
	if r&SignBit(size) != 0 {
		f |= FlagSF
	}
	return f
}

// keep returns flags with the given bits cleared, ready to OR in new values.
func keep(flags, defined uint32) uint32 { return flags &^ defined }

// AddFlags returns flags after r = a + b + carryIn at the given size.
func AddFlags(flags, a, b, carryIn uint32, size uint8) uint32 {
	m := SizeMask(size)
	a, b = a&m, b&m
	r := (a + b + carryIn) & m
	f := szpFlags(r, size)
	if uint64(a)+uint64(b)+uint64(carryIn) > uint64(m) {
		f |= FlagCF
	}
	if (a^r)&(b^r)&SignBit(size) != 0 {
		f |= FlagOF
	}
	if (a^b^r)&0x10 != 0 {
		f |= FlagAF
	}
	return keep(flags, FlagsArith) | f
}

// SubFlags returns flags after r = a - b - borrowIn at the given size.
func SubFlags(flags, a, b, borrowIn uint32, size uint8) uint32 {
	m := SizeMask(size)
	a, b = a&m, b&m
	r := (a - b - borrowIn) & m
	f := szpFlags(r, size)
	if uint64(a) < uint64(b)+uint64(borrowIn) {
		f |= FlagCF
	}
	if (a^b)&(a^r)&SignBit(size) != 0 {
		f |= FlagOF
	}
	if (a^b^r)&0x10 != 0 {
		f |= FlagAF
	}
	return keep(flags, FlagsArith) | f
}

// LogicFlags returns flags after a logical op producing r.
func LogicFlags(flags, r uint32, size uint8) uint32 {
	return keep(flags, FlagsLogic) | szpFlags(r, size)
}

// IncFlags returns flags after INC (CF preserved).
func IncFlags(flags, a uint32, size uint8) uint32 {
	cf := flags & FlagCF
	return keep(AddFlags(flags, a, 1, 0, size), FlagCF) | cf
}

// DecFlags returns flags after DEC (CF preserved).
func DecFlags(flags, a uint32, size uint8) uint32 {
	cf := flags & FlagCF
	return keep(SubFlags(flags, a, 1, 0, size), FlagCF) | cf
}

// NegFlags returns flags after NEG (0 - a).
func NegFlags(flags, a uint32, size uint8) uint32 {
	return SubFlags(flags, 0, a, 0, size)
}

// ShlFlags returns flags after r = a << count (count pre-masked by 31,
// count > 0).
func ShlFlags(flags, a, count uint32, size uint8) uint32 {
	if count == 0 {
		return flags
	}
	bits := uint32(size) * 8
	m := SizeMask(size)
	r := uint32(0)
	if count < 32 {
		r = (a & m) << count & m
	}
	f := szpFlags(r, size)
	if count <= bits && (a>>(bits-count))&1 != 0 {
		f |= FlagCF
	}
	if (r&SignBit(size) != 0) != (f&FlagCF != 0) {
		f |= FlagOF
	}
	return keep(flags, FlagsArith) | f
}

// ShrFlags returns flags after r = (a&mask) >> count, logical.
func ShrFlags(flags, a, count uint32, size uint8) uint32 {
	if count == 0 {
		return flags
	}
	m := SizeMask(size)
	av := a & m
	r := uint32(0)
	if count < 32 {
		r = av >> count
	}
	f := szpFlags(r, size)
	if count <= 32 && count >= 1 && (av>>(count-1))&1 != 0 {
		f |= FlagCF
	}
	if av&SignBit(size) != 0 {
		f |= FlagOF
	}
	return keep(flags, FlagsArith) | f
}

// SarFlags returns flags after an arithmetic right shift.
func SarFlags(flags, a, count uint32, size uint8) uint32 {
	if count == 0 {
		return flags
	}
	m := SizeMask(size)
	sv := int32(a << (32 - uint32(size)*8)) // sign-position-adjusted
	var r uint32
	if count >= uint32(size)*8 {
		r = uint32(sv>>31) & m
	} else {
		r = uint32(sv>>(32-uint32(size)*8)>>count) & m
	}
	f := szpFlags(r, size)
	var cf uint32
	if count >= uint32(size)*8 {
		cf = uint32(sv>>31) & 1
	} else {
		cf = uint32(sv>>(32-uint32(size)*8)>>(count-1)) & 1
	}
	if cf != 0 {
		f |= FlagCF
	}
	return keep(flags, FlagsArith) | f
}

// RolFlags returns flags after a rotate left producing r. Only CF and
// OF are written.
func RolFlags(flags, r uint32, size uint8) uint32 {
	f := keep(flags, FlagCF|FlagOF)
	if r&1 != 0 {
		f |= FlagCF
	}
	msb := r&SignBit(size) != 0
	if msb != (r&1 != 0) {
		f |= FlagOF
	}
	return f
}

// RorFlags returns flags after a rotate right producing r.
func RorFlags(flags, r uint32, size uint8) uint32 {
	f := keep(flags, FlagCF|FlagOF)
	msb := r & SignBit(size)
	if msb != 0 {
		f |= FlagCF
	}
	msb2 := r & (SignBit(size) >> 1)
	if (msb != 0) != (msb2 != 0) {
		f |= FlagOF
	}
	return f
}

// MulFlags returns flags after an unsigned or signed widening multiply;
// hiSignificant reports whether the upper half carries information.
func MulFlags(flags, lo uint32, hiSignificant bool, size uint8) uint32 {
	f := szpFlags(lo, size)
	if hiSignificant {
		f |= FlagCF | FlagOF
	}
	return keep(flags, FlagsArith) | f
}
