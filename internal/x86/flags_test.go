package x86

import (
	"math/rand"
	"testing"
)

func TestAddFlagsBasic(t *testing.T) {
	// 0x7fffffff + 1 overflows signed, no carry.
	f := AddFlags(0, 0x7fffffff, 1, 0, 4)
	if f&FlagOF == 0 || f&FlagCF != 0 || f&FlagSF == 0 || f&FlagZF != 0 {
		t.Errorf("0x7fffffff+1: flags %#x", f)
	}
	// 0xffffffff + 1 carries and zeros.
	f = AddFlags(0, 0xffffffff, 1, 0, 4)
	if f&FlagCF == 0 || f&FlagZF == 0 || f&FlagOF != 0 {
		t.Errorf("0xffffffff+1: flags %#x", f)
	}
	// 8-bit: 0x7f + 1 overflows.
	f = AddFlags(0, 0x7f, 1, 0, 1)
	if f&FlagOF == 0 || f&FlagSF == 0 {
		t.Errorf("0x7f+1 (8-bit): flags %#x", f)
	}
	// Carry-in propagates.
	f = AddFlags(0, 0xfffffffe, 1, 1, 4)
	if f&FlagCF == 0 || f&FlagZF == 0 {
		t.Errorf("0xfffffffe+1+cf: flags %#x", f)
	}
}

func TestSubFlagsBasic(t *testing.T) {
	// 5 - 7 borrows and is negative.
	f := SubFlags(0, 5, 7, 0, 4)
	if f&FlagCF == 0 || f&FlagSF == 0 || f&FlagZF != 0 {
		t.Errorf("5-7: flags %#x", f)
	}
	// 7 - 7 is zero, no borrow.
	f = SubFlags(0, 7, 7, 0, 4)
	if f&FlagZF == 0 || f&FlagCF != 0 {
		t.Errorf("7-7: flags %#x", f)
	}
	// INT_MIN - 1 overflows.
	f = SubFlags(0, 0x80000000, 1, 0, 4)
	if f&FlagOF == 0 {
		t.Errorf("INT_MIN-1: flags %#x", f)
	}
}

func TestCmpDrivesConditions(t *testing.T) {
	cases := []struct {
		a, b uint32
		cond Cond
		want bool
	}{
		{5, 3, CondG, true},
		{3, 5, CondL, true},
		{5, 5, CondE, true},
		{5, 5, CondGE, true},
		{5, 5, CondLE, true},
		{0xffffffff, 1, CondL, true}, // -1 < 1 signed
		{0xffffffff, 1, CondA, true}, // 0xffffffff > 1 unsigned
		{1, 0xffffffff, CondB, true}, // unsigned below
		{1, 0xffffffff, CondG, true}, // signed greater
		{2, 3, CondBE, true},
		{3, 2, CondAE, true},
	}
	for _, c := range cases {
		f := SubFlags(0, c.a, c.b, 0, 4)
		if got := c.cond.Eval(f); got != c.want {
			t.Errorf("cmp %#x,%#x cond %v = %v, want %v (flags %#x)",
				c.a, c.b, c.cond, got, c.want, f)
		}
	}
}

func TestLogicFlags(t *testing.T) {
	f := LogicFlags(FlagCF|FlagOF, 0, 4)
	if f&FlagZF == 0 || f&FlagCF != 0 || f&FlagOF != 0 {
		t.Errorf("logic 0: flags %#x", f)
	}
	f = LogicFlags(0, 0x80000000, 4)
	if f&FlagSF == 0 || f&FlagZF != 0 {
		t.Errorf("logic sign: flags %#x", f)
	}
}

func TestParityFlag(t *testing.T) {
	// PF counts the low byte only: 0x3 has two bits → even → PF set.
	f := LogicFlags(0, 0x3, 4)
	if f&FlagPF == 0 {
		t.Errorf("parity of 0x3: flags %#x", f)
	}
	// 0x1 has one bit → odd → PF clear. High bytes must not matter.
	f = LogicFlags(0, 0xffffff01, 4)
	if f&FlagPF != 0 {
		t.Errorf("parity of 0x01: flags %#x", f)
	}
}

func TestIncDecPreserveCF(t *testing.T) {
	f := IncFlags(FlagCF, 1, 4)
	if f&FlagCF == 0 {
		t.Errorf("inc lost CF: %#x", f)
	}
	f = DecFlags(FlagCF, 1, 4)
	if f&FlagCF == 0 || f&FlagZF == 0 {
		t.Errorf("dec 1: %#x", f)
	}
	// INC 0x7fffffff sets OF even with CF clear.
	f = IncFlags(0, 0x7fffffff, 4)
	if f&FlagOF == 0 || f&FlagCF != 0 {
		t.Errorf("inc maxint: %#x", f)
	}
}

func TestShlFlags(t *testing.T) {
	// SHL 0x80000000-producing shift sets SF; CF is the last bit out.
	f := ShlFlags(0, 0xC0000000, 1, 4)
	if f&FlagCF == 0 || f&FlagSF == 0 {
		t.Errorf("shl 0xC0000000,1: %#x", f)
	}
	// Count 0 leaves flags alone.
	f = ShlFlags(FlagZF|FlagCF, 5, 0, 4)
	if f != FlagZF|FlagCF {
		t.Errorf("shl count 0 changed flags: %#x", f)
	}
}

func TestShrSarFlags(t *testing.T) {
	f := ShrFlags(0, 0x3, 1, 4)
	if f&FlagCF == 0 { // bit 0 shifted out
		t.Errorf("shr 3,1: %#x", f)
	}
	// SAR of negative keeps sign.
	f = SarFlags(0, 0x80000000, 4, 4)
	if f&FlagSF == 0 {
		t.Errorf("sar negative: %#x", f)
	}
	// SAR count >= width collapses to sign fill.
	f = SarFlags(0, 0x80000000, 35, 4)
	if f&FlagSF == 0 || f&FlagCF == 0 {
		t.Errorf("sar 35: %#x", f)
	}
}

func TestNegFlags(t *testing.T) {
	f := NegFlags(0, 0, 4)
	if f&FlagZF == 0 || f&FlagCF != 0 {
		t.Errorf("neg 0: %#x", f)
	}
	f = NegFlags(0, 5, 4)
	if f&FlagCF == 0 || f&FlagSF == 0 {
		t.Errorf("neg 5: %#x", f)
	}
}

func TestMulFlags(t *testing.T) {
	f := MulFlags(0, 100, false, 4)
	if f&(FlagCF|FlagOF) != 0 {
		t.Errorf("small mul: %#x", f)
	}
	f = MulFlags(0, 100, true, 4)
	if f&FlagCF == 0 || f&FlagOF == 0 {
		t.Errorf("wide mul: %#x", f)
	}
}

func TestCondEvalAllNibbles(t *testing.T) {
	// Each condition and its negation must disagree on every flag image.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		flags := r.Uint32() & (FlagCF | FlagPF | FlagZF | FlagSF | FlagOF)
		for c := Cond(0); c < 16; c += 2 {
			if c.Eval(flags) == (c + 1).Eval(flags) {
				t.Fatalf("cond %v and %v agree on flags %#x", c, c+1, flags)
			}
		}
	}
}

func TestFlagsUsedConsistentWithEval(t *testing.T) {
	// Property: Eval must not depend on flags outside FlagsUsed.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		flags := r.Uint32() & FlagsArith
		for c := Cond(0); c < 16; c++ {
			used := c.FlagsUsed()
			noise := r.Uint32() & FlagsArith &^ used
			if c.Eval(flags&used) != c.Eval(flags&used|noise) {
				t.Fatalf("cond %v depends on flags outside %#x", c, used)
			}
		}
	}
}

func TestSizeMaskAndSignBit(t *testing.T) {
	if SizeMask(1) != 0xff || SizeMask(2) != 0xffff || SizeMask(4) != 0xffffffff {
		t.Error("SizeMask wrong")
	}
	if SignBit(1) != 0x80 || SignBit(2) != 0x8000 || SignBit(4) != 0x80000000 {
		t.Error("SignBit wrong")
	}
}
