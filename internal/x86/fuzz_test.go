package x86

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics feeds random byte soup to the decoder: every
// input must either decode or return an error, never panic, and a
// successful decode must report a sane length. Speculative translation
// routinely decodes garbage (data mistaken for code), so this is a
// load-bearing property.
func TestDecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	buf := make([]byte, MaxInstLen+8)
	for i := 0; i < 200_000; i++ {
		n := 1 + r.Intn(len(buf))
		for j := 0; j < n; j++ {
			buf[j] = byte(r.Intn(256))
		}
		in, err := Decode(buf[:n], 0x1000)
		if err != nil {
			continue
		}
		if in.Len == 0 || int(in.Len) > n {
			t.Fatalf("decode of % x: len %d out of range", buf[:n], in.Len)
		}
	}
}

// TestDecodeAllPrefixStorms exercises pathological prefix runs.
func TestDecodeAllPrefixStorms(t *testing.T) {
	prefixes := []byte{0x66, 0xF3, 0xF2, 0x2E, 0x3E, 0x26, 0x36, 0x64, 0x65, 0xF0}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		var buf []byte
		for j := 0; j < r.Intn(20); j++ {
			buf = append(buf, prefixes[r.Intn(len(prefixes))])
		}
		buf = append(buf, byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)),
			byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)))
		in, err := Decode(buf, 0)
		if err == nil && int(in.Len) > len(buf) {
			t.Fatalf("length overrun on % x", buf)
		}
	}
}

// TestDecodeTruncationAtEveryPoint truncates valid encodings at every
// byte position; the decoder must fail cleanly, not read past the end.
func TestDecodeTruncationAtEveryPoint(t *testing.T) {
	a := NewAsm(0)
	a.ALU(ADD, RegOp(EAX, 4), MemIdx(EBX, ECX, 4, 0x12345))
	a.MovRegImm(EDX, 0xdeadbeef)
	a.Jcc(CondG, "x")
	a.Label("x")
	a.ShiftDoubleImm(SHLD, RegOp(EAX, 4), EBX, 5)
	code := a.Bytes()
	for end := 0; end < len(code); end++ {
		// Any prefix of the stream: must not panic.
		Decode(code[:end], 0)
	}
}
