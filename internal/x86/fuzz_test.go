package x86

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics feeds random byte soup to the decoder: every
// input must either decode or return an error, never panic, and a
// successful decode must report a sane length. Speculative translation
// routinely decodes garbage (data mistaken for code), so this is a
// load-bearing property.
func TestDecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	buf := make([]byte, MaxInstLen+8)
	for i := 0; i < 200_000; i++ {
		n := 1 + r.Intn(len(buf))
		for j := 0; j < n; j++ {
			buf[j] = byte(r.Intn(256))
		}
		in, err := Decode(buf[:n], 0x1000)
		if err != nil {
			continue
		}
		if in.Len == 0 || int(in.Len) > n {
			t.Fatalf("decode of % x: len %d out of range", buf[:n], in.Len)
		}
	}
}

// TestDecodeAllPrefixStorms exercises pathological prefix runs.
func TestDecodeAllPrefixStorms(t *testing.T) {
	prefixes := []byte{0x66, 0xF3, 0xF2, 0x2E, 0x3E, 0x26, 0x36, 0x64, 0x65, 0xF0}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		var buf []byte
		for j := 0; j < r.Intn(20); j++ {
			buf = append(buf, prefixes[r.Intn(len(prefixes))])
		}
		buf = append(buf, byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)),
			byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)))
		in, err := Decode(buf, 0)
		if err == nil && int(in.Len) > len(buf) {
			t.Fatalf("length overrun on % x", buf)
		}
	}
}

// FuzzDecode is the native fuzz target behind TestDecodeNeverPanics:
// any input must decode or be rejected with an error — never panic,
// never report a length outside the consumed bytes — and decoding must
// be deterministic.
//
//	go test ./internal/x86 -fuzz FuzzDecode -fuzztime 30s
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x90})                                     // nop
	f.Add([]byte{0x01, 0xD8})                               // add eax, ebx
	f.Add([]byte{0xB8, 0x78, 0x56, 0x34, 0x12})             // mov eax, imm32
	f.Add([]byte{0x0F, 0xAF, 0xC3})                         // imul eax, ebx
	f.Add([]byte{0x8B, 0x84, 0x8B, 0x44, 0x33, 0x22, 0x11}) // mov eax, [ebx+ecx*4+disp32]
	f.Add([]byte{0x66, 0xF3, 0x66, 0xF2, 0x0F})             // prefix soup
	f.Add([]byte{0xCD, 0x80})                               // int 0x80
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Decode(data, 0x1000)
		if err != nil {
			return
		}
		if in.Len == 0 || int(in.Len) > len(data) {
			t.Fatalf("decode of % x: len %d out of range", data, in.Len)
		}
		again, err := Decode(data, 0x1000)
		if err != nil || again != in {
			t.Fatalf("decode of % x not deterministic: %+v / %+v (err %v)", data, in, again, err)
		}
	})
}

// TestDecodeEncodeRoundTrip assembles one instruction of (nearly) every
// form the assembler can emit and decodes the byte stream back: each
// instruction must decode without error, at its exact encoded length,
// to the operation that was assembled.
func TestDecodeEncodeRoundTrip(t *testing.T) {
	a := NewAsm(0x8048000)
	type span struct {
		op  Op
		off int
	}
	var spans []span
	emit := func(op Op, f func()) {
		spans = append(spans, span{op, a.Len()})
		f()
	}

	mem := MemIdx(EBX, ECX, 4, 0x1234)
	for _, op := range []Op{ADD, ADC, SUB, SBB, AND, OR, XOR, CMP} {
		op := op
		emit(op, func() { a.ALU(op, RegOp(EAX, 4), RegOp(EDX, 4)) })
		emit(op, func() { a.ALU(op, RegOp(EAX, 4), mem) })
		emit(op, func() { a.ALU(op, mem, ImmOp(0x42, 4)) })
	}
	emit(MOV, func() { a.MovRegImm(EDI, 0xdeadbeef) })
	emit(MOV, func() { a.MovRegReg(EAX, EBP) })
	emit(MOV, func() { a.MovRegMem(EAX, mem) })
	emit(MOV, func() { a.MovMemReg(mem, ESI) })
	emit(MOV, func() { a.MovMemImm(Mem(ESP, 8), 7) })
	emit(MOV, func() { a.MovRegMem8(EAX, mem) })
	emit(MOV, func() { a.MovMemReg8(mem, ECX) })
	emit(MOVZX, func() { a.Movzx8(EDX, mem) })
	emit(MOVSX, func() { a.Movsx8(EDX, mem) })
	emit(LEA, func() { a.Lea(EAX, mem) })
	emit(PUSH, func() { a.Push(EBX) })
	emit(PUSH, func() { a.PushImm(0x1000) })
	emit(POP, func() { a.Pop(EBX) })
	emit(INC, func() { a.IncReg(EAX) })
	emit(DEC, func() { a.DecReg(EAX) })
	emit(NEG, func() { a.Neg(RegOp(EAX, 4)) })
	emit(NOT, func() { a.Not(mem) })
	emit(SHL, func() { a.ShiftImm(SHL, RegOp(EAX, 4), 3) })
	emit(SHR, func() { a.ShiftImm(SHR, mem, 1) })
	emit(SAR, func() { a.ShiftCL(SAR, RegOp(EDX, 4)) })
	emit(SHLD, func() { a.ShiftDoubleImm(SHLD, RegOp(EAX, 4), EBX, 5) })
	emit(SHRD, func() { a.ShiftDoubleCL(SHRD, RegOp(EAX, 4), EBX) })
	emit(IMUL2, func() { a.IMulRegRM(EAX, RegOp(ECX, 4)) })
	emit(IMUL2, func() { a.IMulRegRMImm(EAX, RegOp(ECX, 4), 100) })
	emit(MUL, func() { a.MulRM(RegOp(EBX, 4)) })
	emit(DIV, func() { a.DivRM(RegOp(EBX, 4)) })
	emit(IDIV, func() { a.IDivRM(mem) })
	emit(BSWAP, func() { a.Bswap(EDX) })
	emit(CWDE, func() { a.Cwde() })
	emit(BT, func() { a.BtReg(BT, RegOp(EAX, 4), EBX) })
	emit(BTS, func() { a.BtImm(BTS, mem, 7) })
	emit(BSF, func() { a.Bsf(EAX, RegOp(EBX, 4)) })
	emit(BSR, func() { a.Bsr(EAX, mem) })
	emit(CMPXCHG, func() { a.Cmpxchg(mem, EDX) })
	emit(XADD, func() { a.Xadd(RegOp(EAX, 4), EDX) })
	emit(SETCC, func() { a.Setcc(CondNE, RegOp(EAX, 1)) })
	emit(CMOVCC, func() { a.Cmovcc(CondL, EAX, RegOp(EBX, 4)) })
	emit(CLD, func() { a.Cld() })
	emit(MOVS, func() { a.RepMovsd() })
	emit(STOS, func() { a.RepStosd() })
	emit(CMPS, func() { a.RepeCmpsd() })
	emit(SCAS, func() { a.RepneScasb() })
	emit(CALLIND, func() { a.CallReg(EAX) })
	emit(CALLIND, func() { a.CallMem(mem) })
	emit(JMPIND, func() { a.JmpReg(EAX) })
	emit(JCC, func() { a.Jcc(CondG, "fwd") })
	emit(JMP, func() { a.Jmp("fwd") })
	emit(CALL, func() { a.Call("fwd") })
	a.Label("fwd")
	emit(LEAVE, func() { a.Leave() })
	emit(RET, func() { a.Ret() })
	emit(RET, func() { a.RetImm(8) })
	emit(INT, func() { a.Int(0x80) })
	emit(HLT, func() { a.Hlt() })

	code := a.Bytes()
	for i, s := range spans {
		end := len(code)
		if i+1 < len(spans) {
			end = spans[i+1].off
		}
		in, err := Decode(code[s.off:], 0x8048000+uint32(s.off))
		if err != nil {
			t.Fatalf("span %d (%v) at +%#x: decode failed: %v (bytes % x)",
				i, s.op, s.off, err, code[s.off:end])
		}
		if int(in.Len) != end-s.off {
			t.Errorf("span %d (%v): decoded length %d, encoded %d (bytes % x)",
				i, s.op, in.Len, end-s.off, code[s.off:end])
		}
		if in.Op != s.op {
			t.Errorf("span %d: assembled %v, decoded %v (bytes % x)",
				i, s.op, in.Op, code[s.off:end])
		}
	}
}

// TestDecodeTruncationAtEveryPoint truncates valid encodings at every
// byte position; the decoder must fail cleanly, not read past the end.
func TestDecodeTruncationAtEveryPoint(t *testing.T) {
	a := NewAsm(0)
	a.ALU(ADD, RegOp(EAX, 4), MemIdx(EBX, ECX, 4, 0x12345))
	a.MovRegImm(EDX, 0xdeadbeef)
	a.Jcc(CondG, "x")
	a.Label("x")
	a.ShiftDoubleImm(SHLD, RegOp(EAX, 4), EBX, 5)
	code := a.Bytes()
	for end := 0; end < len(code); end++ {
		// Any prefix of the stream: must not panic.
		Decode(code[:end], 0)
	}
}
