// Package x86 models the guest instruction set: a 32-bit userland
// integer subset of IA-32 sufficient to run the synthetic SpecInt-like
// workloads and hand-written guest programs through the translator. It
// provides variable-length instruction decoding (prefixes, ModRM, SIB,
// displacements, immediates), a normalized instruction representation,
// canonical EFLAGS semantics, and a disassembler.
package x86

import "fmt"

// Reg is an x86 general-purpose register number. For 32- and 16-bit
// operands the numbering is EAX..EDI; for 8-bit operands values 0-3 are
// AL,CL,DL,BL and 4-7 are AH,CH,DH,BH.
type Reg uint8

// 32-bit register numbers.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
)

var regNames32 = [8]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}
var regNames16 = [8]string{"ax", "cx", "dx", "bx", "sp", "bp", "si", "di"}
var regNames8 = [8]string{"al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"}

// Name returns the register's name at the given operand size.
func (r Reg) Name(size int) string {
	if r > 7 {
		return fmt.Sprintf("r%d?", uint8(r))
	}
	switch size {
	case 1:
		return regNames8[r]
	case 2:
		return regNames16[r]
	default:
		return regNames32[r]
	}
}

// EFLAGS bit positions (x86 layout).
const (
	FlagCF uint32 = 1 << 0
	FlagPF uint32 = 1 << 2
	FlagAF uint32 = 1 << 4
	FlagZF uint32 = 1 << 6
	FlagSF uint32 = 1 << 7
	FlagDF uint32 = 1 << 10
	FlagOF uint32 = 1 << 11

	// FlagsArith is the set of flags written by most ALU operations.
	FlagsArith = FlagCF | FlagPF | FlagAF | FlagZF | FlagSF | FlagOF
	// FlagsLogic are the ones meaningfully defined by AND/OR/XOR/TEST
	// (CF and OF are cleared; AF is architecturally undefined — we
	// define it as cleared, and the translator reproduces that).
	FlagsLogic = FlagsArith
)

// Cond is a condition code (the low nibble of Jcc/SETcc/CMOVcc opcodes).
type Cond uint8

const (
	CondO  Cond = iota // overflow
	CondNO             // not overflow
	CondB              // below (CF)
	CondAE             // above or equal (!CF)
	CondE              // equal (ZF)
	CondNE             // not equal (!ZF)
	CondBE             // below or equal (CF|ZF)
	CondA              // above (!CF & !ZF)
	CondS              // sign (SF)
	CondNS             // not sign
	CondP              // parity (PF)
	CondNP             // not parity
	CondL              // less (SF != OF)
	CondGE             // greater or equal (SF == OF)
	CondLE             // less or equal (ZF | SF != OF)
	CondG              // greater (!ZF & SF == OF)
)

var condNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

func (c Cond) String() string { return condNames[c&15] }

// FlagsUsed returns the EFLAGS bits a condition reads.
func (c Cond) FlagsUsed() uint32 {
	switch c {
	case CondO, CondNO:
		return FlagOF
	case CondB, CondAE:
		return FlagCF
	case CondE, CondNE:
		return FlagZF
	case CondBE, CondA:
		return FlagCF | FlagZF
	case CondS, CondNS:
		return FlagSF
	case CondP, CondNP:
		return FlagPF
	case CondL, CondGE:
		return FlagSF | FlagOF
	case CondLE, CondG:
		return FlagZF | FlagSF | FlagOF
	}
	return 0
}

// Eval evaluates the condition against an EFLAGS value.
func (c Cond) Eval(flags uint32) bool {
	cf := flags&FlagCF != 0
	zf := flags&FlagZF != 0
	sf := flags&FlagSF != 0
	of := flags&FlagOF != 0
	pf := flags&FlagPF != 0
	var v bool
	switch c &^ 1 {
	case CondO:
		v = of
	case CondB:
		v = cf
	case CondE:
		v = zf
	case CondBE:
		v = cf || zf
	case CondS:
		v = sf
	case CondP:
		v = pf
	case CondL:
		v = sf != of
	case CondLE:
		v = zf || sf != of
	}
	if c&1 != 0 {
		v = !v
	}
	return v
}

// Op is a normalized x86 operation.
type Op uint8

const (
	INVALID Op = iota
	MOV
	MOVZX
	MOVSX
	LEA
	XCHG
	ADD
	ADC
	SUB
	SBB
	CMP
	AND
	OR
	XOR
	TEST
	NOT
	NEG
	INC
	DEC
	SHL
	SHR
	SAR
	ROL
	ROR
	RCL
	RCR
	SHLD
	SHRD
	IMUL  // 1-op form: EDX:EAX = EAX * r/m
	IMUL2 // 2/3-op form: reg = src * src2 (truncated)
	MUL
	DIV
	IDIV
	CDQ
	CWDE // CBW with 16-bit operand size
	BSWAP
	BT
	BTS
	BTR
	BTC
	BSF
	BSR
	CMPXCHG
	XADD
	PUSH
	POP
	LEAVE
	CALL    // direct, relative
	CALLIND // indirect through r/m
	RET     // optional stack adjustment in Dst imm
	JMP     // direct, relative
	JMPIND  // indirect through r/m
	JCC
	SETCC
	CMOVCC
	MOVS // string move, width in OpSize, REP optional
	STOS
	LODS
	SCAS
	CMPS
	CLC
	STC
	CMC
	CLD
	STD
	SAHF
	LAHF
	INT // software interrupt; INT 0x80 is the Linux syscall gate
	NOPOP
	HLT

	numOps
)

var opNames = [numOps]string{
	INVALID: "(bad)", MOV: "mov", MOVZX: "movzx", MOVSX: "movsx",
	LEA: "lea", XCHG: "xchg", ADD: "add", ADC: "adc", SUB: "sub",
	SBB: "sbb", CMP: "cmp", AND: "and", OR: "or", XOR: "xor",
	TEST: "test", NOT: "not", NEG: "neg", INC: "inc", DEC: "dec",
	SHL: "shl", SHR: "shr", SAR: "sar", ROL: "rol", ROR: "ror",
	RCL: "rcl", RCR: "rcr", SHLD: "shld", SHRD: "shrd",
	IMUL: "imul", IMUL2: "imul", MUL: "mul", DIV: "div", IDIV: "idiv",
	CDQ: "cdq", CWDE: "cwde", BSWAP: "bswap",
	BT: "bt", BTS: "bts", BTR: "btr", BTC: "btc",
	BSF: "bsf", BSR: "bsr", CMPXCHG: "cmpxchg", XADD: "xadd",
	PUSH: "push", POP: "pop",
	LEAVE: "leave", CALL: "call", CALLIND: "call", RET: "ret",
	JMP: "jmp", JMPIND: "jmp", JCC: "j", SETCC: "set",
	CMOVCC: "cmov", MOVS: "movs", STOS: "stos", LODS: "lods",
	SCAS: "scas", CMPS: "cmps", CLC: "clc", STC: "stc", CMC: "cmc",
	CLD: "cld", STD: "std", SAHF: "sahf", LAHF: "lahf", INT: "int",
	NOPOP: "nop", HLT: "hlt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OperandKind classifies an operand.
type OperandKind uint8

const (
	KNone OperandKind = iota
	KReg
	KImm
	KMem
)

// NoIndex marks an absent base or index register in a memory operand.
const NoIndex int8 = -1

// Operand is one normalized instruction operand.
type Operand struct {
	Kind  OperandKind
	Size  uint8 // access size in bytes: 1, 2, or 4
	Reg   Reg   // KReg
	Imm   int32 // KImm (sign-extended to 32 bits)
	Base  int8  // KMem: base register or NoIndex
	Index int8  // KMem: index register or NoIndex
	Scale uint8 // KMem: 1, 2, 4, 8
	Disp  int32 // KMem: displacement
}

// RegOp builds a register operand.
func RegOp(r Reg, size uint8) Operand { return Operand{Kind: KReg, Reg: r, Size: size} }

// ImmOp builds an immediate operand.
func ImmOp(v int32, size uint8) Operand { return Operand{Kind: KImm, Imm: v, Size: size} }

// MemOp builds a memory operand.
func MemOp(base, index int8, scale uint8, disp int32, size uint8) Operand {
	return Operand{Kind: KMem, Base: base, Index: index, Scale: scale, Disp: disp, Size: size}
}

func (o Operand) String() string {
	switch o.Kind {
	case KNone:
		return ""
	case KReg:
		return o.Reg.Name(int(o.Size))
	case KImm:
		return fmt.Sprintf("%#x", uint32(o.Imm))
	case KMem:
		s := "["
		sep := ""
		if o.Base != NoIndex {
			s += Reg(o.Base).Name(4)
			sep = "+"
		}
		if o.Index != NoIndex {
			s += fmt.Sprintf("%s%s*%d", sep, Reg(o.Index).Name(4), o.Scale)
			sep = "+"
		}
		if o.Disp != 0 || sep == "" {
			if o.Disp >= 0 {
				s += fmt.Sprintf("%s%#x", sep, o.Disp)
			} else {
				s += fmt.Sprintf("-%#x", -o.Disp)
			}
		}
		return s + "]"
	}
	return "?"
}

// Inst is one decoded guest instruction.
type Inst struct {
	Addr   uint32 // guest virtual address of the first byte
	Len    uint8  // encoded length in bytes
	Op     Op
	Cond   Cond    // JCC/SETCC/CMOVCC
	Dst    Operand // destination (also first source for RMW ops)
	Src    Operand
	Src2   Operand // third operand (3-op IMUL, SHLD/SHRD count)
	Rep    bool    // REP/REPE prefix present (string ops)
	RepNE  bool    // REPNE prefix (SCAS/CMPS)
	OpSize uint8   // effective operand size of implicit-operand ops
}

// Next returns the address of the following instruction.
func (i Inst) Next() uint32 { return i.Addr + uint32(i.Len) }

// BranchTarget returns the taken target of a direct CALL/JMP/JCC (the
// relative displacement is stored in Src.Imm).
func (i Inst) BranchTarget() uint32 { return i.Next() + uint32(i.Src.Imm) }

// EndsBlock reports whether the instruction terminates a basic block.
func (i Inst) EndsBlock() bool {
	switch i.Op {
	case CALL, CALLIND, RET, JMP, JMPIND, JCC, INT, HLT:
		return true
	}
	return false
}

func (i Inst) String() string {
	name := i.Op.String()
	switch i.Op {
	case JCC, SETCC, CMOVCC:
		name += i.Cond.String()
	case MOVS, STOS, LODS, SCAS:
		suffix := map[uint8]string{1: "b", 2: "w", 4: "d"}[i.OpSize]
		if i.Rep {
			name = "rep " + name
		}
		name += suffix
	}
	out := name
	args := ""
	switch {
	case i.Op == JCC || i.Op == JMP || i.Op == CALL:
		args = fmt.Sprintf("%#x", i.BranchTarget())
	default:
		for _, op := range []Operand{i.Dst, i.Src, i.Src2} {
			if op.Kind == KNone {
				continue
			}
			if args != "" {
				args += ", "
			}
			args += op.String()
		}
	}
	if args != "" {
		out += " " + args
	}
	return out
}
