package x86interp

import (
	"testing"

	"tilevm/internal/guest"
	"tilevm/internal/x86"
)

// Direct unit tests for the extended-op interpreter helpers (the
// differential suite covers them end-to-end; these pin exact
// semantics at the unit level).

func TestRotateCarrySemantics(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		// CF=1; RCL EAX(0x80000000),1 => EAX=1 (CF rotated in), CF=1 (old msb).
		a.MovRegImm(x86.EAX, 0x80000000)
		a.ALU(x86.CMP, x86.RegOp(x86.EAX, 4), x86.ImmOp(1, 4)) // sets CF? 0x80000000 < 1 unsigned: no. Use STC.
		a.Raw(0xF9)                                            // STC
		a.ShiftImm(x86.RCL, x86.RegOp(x86.EAX, 4), 1)
		a.MovRegReg(x86.EBX, x86.EAX)
		a.Setcc(x86.CondB, x86.RegOp(x86.ECX, 1))
		exit(a)
	})
	if p.Reg(x86.EBX) != 1 {
		t.Errorf("RCL result %#x, want 1", p.Reg(x86.EBX))
	}
	if p.Reg8(x86.ECX&3) != 1 {
		t.Errorf("RCL CF not set")
	}
}

func TestShiftDoubleSemantics(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0xF0000001)
		a.MovRegImm(x86.EDX, 0xAAAAAAAA)
		a.ShiftDoubleImm(x86.SHLD, x86.RegOp(x86.EAX, 4), x86.EDX, 4)
		a.MovRegReg(x86.EBX, x86.EAX) // 0x0000001A
		exit(a)
	})
	if p.Reg(x86.EBX) != 0x0000001A {
		t.Errorf("SHLD = %#x, want 0x1a", p.Reg(x86.EBX))
	}
}

func TestBitStringAddressing(t *testing.T) {
	// BT [mem], reg with an offset beyond the word must index the
	// containing word (bit-string addressing).
	p := run(t, func(a *x86.Asm) {
		base := uint32(guest.DefaultHeapBase)
		a.MovRegImm(x86.ESI, base)
		a.MovMemImm(x86.Mem(x86.ESI, 12), 1<<9) // word 3, bit 9 => bit offset 105
		a.MovRegImm(x86.ECX, 105)
		a.BtReg(x86.BT, x86.Mem(x86.ESI, 0), x86.ECX)
		a.Setcc(x86.CondB, x86.RegOp(x86.EBX, 1))
		exit(a)
	})
	if p.Kern.ExitCode != 1 {
		t.Errorf("bit-string BT missed: exit %d", p.Kern.ExitCode)
	}
}

func TestCmpxchgBothPaths(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		base := uint32(guest.DefaultHeapBase)
		a.MovRegImm(x86.ESI, base)
		a.MovMemImm(x86.Mem(x86.ESI, 0), 42)
		a.MovRegImm(x86.EAX, 42)
		a.MovRegImm(x86.EBX, 99)
		a.Cmpxchg(x86.Mem(x86.ESI, 0), x86.EBX) // success: [esi]=99
		a.MovRegImm(x86.EAX, 1)
		a.Cmpxchg(x86.Mem(x86.ESI, 0), x86.EBX) // fail: EAX=99
		a.MovRegReg(x86.EBX, x86.EAX)
		exit(a)
	})
	if p.Kern.ExitCode != 99 {
		t.Errorf("cmpxchg fail path: EAX=%d, want 99", p.Kern.ExitCode)
	}
	if p.Mem.Read32(guest.DefaultHeapBase) != 99 {
		t.Errorf("cmpxchg success path did not store")
	}
}

func TestBsfBsrEdge(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0x00100100)
		a.Bsf(x86.EBX, x86.RegOp(x86.EAX, 4)) // 8
		a.Bsr(x86.ECX, x86.RegOp(x86.EAX, 4)) // 20
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.ECX, 4))
		exit(a)
	})
	if p.Kern.ExitCode != 28 {
		t.Errorf("bsf+bsr = %d, want 28", p.Kern.ExitCode)
	}
}

func TestRepeCmpsFindsDifference(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		base := uint32(guest.DefaultHeapBase)
		a.MovRegImm(x86.ESI, base)
		a.MovMemImm(x86.Mem(x86.ESI, 0), 0x11111111)
		a.MovMemImm(x86.Mem(x86.ESI, 4), 0x22222222)
		a.MovMemImm(x86.Mem(x86.ESI, 0x100), 0x11111111)
		a.MovMemImm(x86.Mem(x86.ESI, 0x104), 0x33333333)
		a.Cld()
		a.MovRegImm(x86.EDI, base+0x100)
		a.MovRegImm(x86.ECX, 4)
		a.RepeCmpsd()                 // stops after word 1 (differs)
		a.MovRegReg(x86.EBX, x86.ECX) // remaining = 2
		exit(a)
	})
	if p.Kern.ExitCode != 2 {
		t.Errorf("repe cmpsd remaining = %d, want 2", p.Kern.ExitCode)
	}
}

func TestCbwCwde(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0x12348081)
		a.Raw(0x66, 0x98) // CBW: AX = sext(AL=0x81) = 0xFF81
		a.MovRegReg(x86.EBX, x86.EAX)
		a.Cwde() // EAX = sext(AX=0xFF81) = 0xFFFFFF81
		a.MovRegReg(x86.ECX, x86.EAX)
		a.ALU(x86.XOR, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.ECX, 4))
		a.ShiftImm(x86.SHR, x86.RegOp(x86.EBX, 4), 16) // high half of xor = 0x1234^0xFFFF
		exit(a)
	})
	if p.Reg(x86.ECX) != 0xffffff81 {
		t.Errorf("CWDE: ECX=%#x, want 0xffffff81", p.Reg(x86.ECX))
	}
	// EBX = (0x1234FF81 ^ 0xFFFFFF81) >> 16 = 0x1234 ^ 0xFFFF.
	if p.Reg(x86.EBX) != 0x1234^0xffff {
		t.Errorf("CBW/CWDE xor = %#x, want %#x", p.Reg(x86.EBX), 0x1234^0xffff)
	}
}
