// Package x86interp is the golden-model executor for the guest ISA: a
// straightforward instruction-at-a-time interpreter over guest.Process
// state. It defines the semantics the translator must reproduce
// (differential tests compare the two after every block) and drives the
// Pentium III baseline timing model through its memory-access hook.
package x86interp

import (
	"fmt"

	"tilevm/internal/guest"
	"tilevm/internal/x86"
)

// Fault is a guest execution error (undecodable instruction, division
// by zero, HLT in userland).
type Fault struct {
	PC     uint32
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("x86interp: fault at %#x: %s", f.PC, f.Reason)
}

// Interp executes a guest process.
type Interp struct {
	P *guest.Process

	// Steps counts retired guest instructions.
	Steps uint64
	// OnMem, if set, observes every data-memory access (after effective
	// address computation, before the access itself).
	OnMem func(addr uint32, size uint8, write bool)
	// OnInst, if set, observes every retired instruction.
	OnInst func(in *x86.Inst)

	icache map[uint32]x86.Inst
	// decodedPages tracks 4KB pages with cached decodes so stores into
	// them (self-modifying code) invalidate the decode cache.
	decodedPages map[uint32]bool
}

// New builds an interpreter for a loaded process.
func New(p *guest.Process) *Interp {
	return &Interp{
		P:            p,
		icache:       make(map[uint32]x86.Inst),
		decodedPages: make(map[uint32]bool),
	}
}

const smcPageShift = 12

// noteStore invalidates cached decodes when guest code is overwritten.
func (it *Interp) noteStore(addr uint32, size uint8) {
	first := addr >> smcPageShift
	last := (addr + uint32(size) - 1) >> smcPageShift
	for pg := first; pg <= last; pg++ {
		if it.decodedPages[pg] {
			// Rare event: drop the whole cache rather than tracking
			// per-address residency.
			it.icache = make(map[uint32]x86.Inst)
			it.decodedPages = make(map[uint32]bool)
			return
		}
	}
}

func (it *Interp) fault(reason string) error {
	return &Fault{PC: it.P.PC, Reason: reason}
}

// fetch decodes (with caching) the instruction at PC.
func (it *Interp) fetch() (x86.Inst, error) {
	if in, ok := it.icache[it.P.PC]; ok {
		return in, nil
	}
	window := it.P.Mem.CodeWindow(it.P.PC, x86.MaxInstLen+4)
	in, err := x86.Decode(window, it.P.PC)
	if err != nil {
		return in, err
	}
	it.icache[it.P.PC] = in
	it.decodedPages[it.P.PC>>smcPageShift] = true
	it.decodedPages[(it.P.PC+uint32(in.Len)-1)>>smcPageShift] = true
	return in, nil
}

// ea computes a memory operand's effective address.
func (it *Interp) ea(o x86.Operand) uint32 {
	addr := uint32(o.Disp)
	if o.Base != x86.NoIndex {
		addr += it.P.Reg(x86.Reg(o.Base))
	}
	if o.Index != x86.NoIndex {
		addr += it.P.Reg(x86.Reg(o.Index)) * uint32(o.Scale)
	}
	return addr
}

// read returns an operand's value, zero-extended to 32 bits.
func (it *Interp) read(o x86.Operand) uint32 {
	switch o.Kind {
	case x86.KReg:
		return it.P.RegSized(o.Reg, o.Size)
	case x86.KImm:
		return uint32(o.Imm) & x86.SizeMask(o.Size)
	case x86.KMem:
		addr := it.ea(o)
		if it.OnMem != nil {
			it.OnMem(addr, o.Size, false)
		}
		return it.P.Mem.ReadN(addr, o.Size)
	}
	panic("x86interp: read of empty operand")
}

// write stores a value to a register or memory operand.
func (it *Interp) write(o x86.Operand, v uint32) {
	switch o.Kind {
	case x86.KReg:
		it.P.SetRegSized(o.Reg, v&x86.SizeMask(o.Size), o.Size)
	case x86.KMem:
		addr := it.ea(o)
		if it.OnMem != nil {
			it.OnMem(addr, o.Size, true)
		}
		it.P.Mem.WriteN(addr, v, o.Size)
		it.noteStore(addr, o.Size)
	default:
		panic("x86interp: write to non-lvalue operand")
	}
}

func (it *Interp) push32(v uint32) {
	sp := it.P.Reg(x86.ESP) - 4
	it.P.SetReg(x86.ESP, sp)
	if it.OnMem != nil {
		it.OnMem(sp, 4, true)
	}
	it.P.Mem.Write32(sp, v)
	it.noteStore(sp, 4)
}

func (it *Interp) pop32() uint32 {
	sp := it.P.Reg(x86.ESP)
	if it.OnMem != nil {
		it.OnMem(sp, 4, false)
	}
	v := it.P.Mem.Read32(sp)
	it.P.SetReg(x86.ESP, sp+4)
	return v
}

// Step executes one instruction. It returns an error on a fault; guest
// exit is reported through P.Exited(), not as an error.
func (it *Interp) Step() error {
	p := it.P
	in, err := it.fetch()
	if err != nil {
		return err
	}
	next := in.Next()
	size := in.Dst.Size
	mask := x86.SizeMask(size)

	switch in.Op {
	case x86.MOV:
		it.write(in.Dst, it.read(in.Src))

	case x86.MOVZX:
		it.write(in.Dst, it.read(in.Src)) // read is already zero-extended

	case x86.MOVSX:
		v := it.read(in.Src)
		shift := 32 - uint32(in.Src.Size)*8
		it.write(in.Dst, uint32(int32(v<<shift)>>shift))

	case x86.LEA:
		it.write(in.Dst, it.ea(in.Src))

	case x86.XCHG:
		a, b := it.read(in.Dst), it.read(in.Src)
		it.write(in.Dst, b)
		it.write(in.Src, a)

	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.CMP:
		a, b := it.read(in.Dst), it.read(in.Src)
		var carry uint32
		if (in.Op == x86.ADC || in.Op == x86.SBB) && p.Flags&x86.FlagCF != 0 {
			carry = 1
		}
		var r uint32
		switch in.Op {
		case x86.ADD, x86.ADC:
			r = (a + b + carry) & mask
			p.Flags = x86.AddFlags(p.Flags, a, b, carry, size)
		default:
			r = (a - b - carry) & mask
			p.Flags = x86.SubFlags(p.Flags, a, b, carry, size)
		}
		if in.Op != x86.CMP {
			it.write(in.Dst, r)
		}

	case x86.AND, x86.OR, x86.XOR, x86.TEST:
		a, b := it.read(in.Dst), it.read(in.Src)
		var r uint32
		switch in.Op {
		case x86.AND, x86.TEST:
			r = a & b
		case x86.OR:
			r = a | b
		case x86.XOR:
			r = a ^ b
		}
		r &= mask
		p.Flags = x86.LogicFlags(p.Flags, r, size)
		if in.Op != x86.TEST {
			it.write(in.Dst, r)
		}

	case x86.NOT:
		it.write(in.Dst, ^it.read(in.Dst)&mask)

	case x86.NEG:
		a := it.read(in.Dst)
		p.Flags = x86.NegFlags(p.Flags, a, size)
		it.write(in.Dst, (-a)&mask)

	case x86.INC:
		a := it.read(in.Dst)
		p.Flags = x86.IncFlags(p.Flags, a, size)
		it.write(in.Dst, (a+1)&mask)

	case x86.DEC:
		a := it.read(in.Dst)
		p.Flags = x86.DecFlags(p.Flags, a, size)
		it.write(in.Dst, (a-1)&mask)

	case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
		if err := it.shift(in, size, mask); err != nil {
			return err
		}

	case x86.RCL, x86.RCR:
		it.rotateCarry(in, size, mask)

	case x86.SHLD, x86.SHRD:
		it.shiftDouble(in, size, mask)

	case x86.BT, x86.BTS, x86.BTR, x86.BTC:
		it.bitTest(in, size)

	case x86.BSF, x86.BSR:
		it.bitScan(in, size)

	case x86.CMPXCHG:
		a := p.RegSized(x86.EAX, size)
		dst := it.read(in.Dst)
		p.Flags = x86.SubFlags(p.Flags, a, dst, 0, size)
		if a == dst {
			it.write(in.Dst, it.read(in.Src))
		} else {
			p.SetRegSized(x86.EAX, dst, size)
		}

	case x86.XADD:
		a := it.read(in.Dst)
		b := it.read(in.Src)
		r := (a + b) & mask
		p.Flags = x86.AddFlags(p.Flags, a, b, 0, size)
		it.write(in.Src, a)
		it.write(in.Dst, r)

	case x86.IMUL:
		it.mul1(in, true)
	case x86.MUL:
		it.mul1(in, false)

	case x86.IMUL2:
		a := int32(it.read(in.Src))
		var b int32
		if in.Src2.Kind != x86.KNone {
			b = int32(it.read(in.Src2))
		} else {
			b = int32(it.read(in.Dst))
		}
		wide := int64(a) * int64(b)
		lo := uint32(wide)
		p.Flags = x86.MulFlags(p.Flags, lo, wide != int64(int32(lo)), size)
		it.write(in.Dst, lo)

	case x86.DIV, x86.IDIV:
		if err := it.div(in); err != nil {
			return err
		}

	case x86.CDQ:
		p.SetReg(x86.EDX, uint32(int32(p.Reg(x86.EAX))>>31))

	case x86.CWDE:
		if in.OpSize == 2 { // CBW: AX = sext(AL)
			p.SetReg16(x86.EAX, uint32(int32(int8(p.Reg8(x86.EAX)))))
		} else { // CWDE: EAX = sext(AX)
			p.SetReg(x86.EAX, uint32(int32(int16(p.Reg16(x86.EAX)))))
		}

	case x86.BSWAP:
		v := p.Reg(in.Dst.Reg)
		p.SetReg(in.Dst.Reg, v<<24|v>>24|(v&0xff00)<<8|(v>>8)&0xff00)

	case x86.PUSH:
		it.push32(it.read(in.Dst))

	case x86.POP:
		v := it.pop32()
		it.write(in.Dst, v)

	case x86.LEAVE:
		p.SetReg(x86.ESP, p.Reg(x86.EBP))
		p.SetReg(x86.EBP, it.pop32())

	case x86.CALL:
		it.push32(next)
		next = in.BranchTarget()

	case x86.CALLIND:
		target := it.read(in.Src)
		it.push32(next)
		next = target

	case x86.RET:
		next = it.pop32()
		if in.Dst.Kind == x86.KImm {
			p.SetReg(x86.ESP, p.Reg(x86.ESP)+uint32(in.Dst.Imm))
		}

	case x86.JMP:
		next = in.BranchTarget()

	case x86.JMPIND:
		next = it.read(in.Src)

	case x86.JCC:
		if in.Cond.Eval(p.Flags) {
			next = in.BranchTarget()
		}

	case x86.SETCC:
		v := uint32(0)
		if in.Cond.Eval(p.Flags) {
			v = 1
		}
		it.write(in.Dst, v)

	case x86.CMOVCC:
		if in.Cond.Eval(p.Flags) {
			it.write(in.Dst, it.read(in.Src))
		}

	case x86.MOVS, x86.STOS, x86.LODS, x86.SCAS, x86.CMPS:
		if err := it.stringOp(in); err != nil {
			return err
		}

	case x86.CLC:
		p.Flags &^= x86.FlagCF
	case x86.STC:
		p.Flags |= x86.FlagCF
	case x86.CMC:
		p.Flags ^= x86.FlagCF
	case x86.CLD:
		p.Flags &^= x86.FlagDF
	case x86.STD:
		p.Flags |= x86.FlagDF

	case x86.SAHF:
		ah := p.Reg8(x86.ESP) // reg8 #4 is AH
		keep := p.Flags &^ (x86.FlagSF | x86.FlagZF | x86.FlagAF | x86.FlagPF | x86.FlagCF)
		p.Flags = keep | ah&(x86.FlagSF|x86.FlagZF|x86.FlagAF|x86.FlagPF|x86.FlagCF)
	case x86.LAHF:
		lo := p.Flags&(x86.FlagSF|x86.FlagZF|x86.FlagAF|x86.FlagPF|x86.FlagCF) | 0x02
		p.SetReg8(x86.ESP, lo) // AH

	case x86.INT:
		if in.Dst.Imm != 0x80 {
			return it.fault(fmt.Sprintf("int %#x not supported", in.Dst.Imm))
		}
		p.Kern.Syscall(p.Mem, &p.R)

	case x86.NOPOP:
		// nothing

	case x86.HLT:
		return it.fault("hlt in userland")

	default:
		return it.fault(fmt.Sprintf("unimplemented op %v", in.Op))
	}

	p.PC = next
	it.Steps++
	if it.OnInst != nil {
		it.OnInst(&in)
	}
	return nil
}

// shift implements SHL/SHR/SAR/ROL/ROR.
func (it *Interp) shift(in x86.Inst, size uint8, mask uint32) error {
	p := it.P
	a := it.read(in.Dst)
	count := it.read(in.Src) & 31
	if count == 0 {
		return nil
	}
	bits := uint32(size) * 8
	var r uint32
	switch in.Op {
	case x86.SHL:
		if count < 32 {
			r = a << count & mask
		}
		p.Flags = x86.ShlFlags(p.Flags, a, count, size)
	case x86.SHR:
		if count < 32 {
			r = (a & mask) >> count
		}
		p.Flags = x86.ShrFlags(p.Flags, a, count, size)
	case x86.SAR:
		sv := int32(a << (32 - bits))
		if count >= bits {
			r = uint32(sv>>31) & mask
		} else {
			r = uint32(sv>>(32-bits)>>count) & mask
		}
		p.Flags = x86.SarFlags(p.Flags, a, count, size)
	case x86.ROL:
		c := count % bits
		r = (a<<c | (a&mask)>>(bits-c)) & mask
		if c == 0 {
			r = a & mask
		}
		p.Flags = x86.RolFlags(p.Flags, r, size)
	case x86.ROR:
		c := count % bits
		r = ((a&mask)>>c | a<<(bits-c)) & mask
		if c == 0 {
			r = a & mask
		}
		p.Flags = x86.RorFlags(p.Flags, r, size)
	}
	it.write(in.Dst, r)
	return nil
}

// mul1 implements the one-operand widening multiplies.
func (it *Interp) mul1(in x86.Inst, signed bool) {
	p := it.P
	size := in.OpSize
	src := it.read(in.Src)
	switch size {
	case 1:
		al := p.Reg8(x86.EAX)
		var wide uint32
		if signed {
			wide = uint32(int32(int8(al)) * int32(int8(src)))
		} else {
			wide = al * src
		}
		p.SetReg16(x86.EAX, wide&0xffff)
		hiSig := wide>>8 != 0
		if signed {
			hiSig = int16(wide) != int16(int8(wide))
		}
		p.Flags = x86.MulFlags(p.Flags, wide&0xff, hiSig, 1)
	default: // 4 (16-bit form unused by our workloads but handled as 32)
		a := p.Reg(x86.EAX)
		var lo, hi uint32
		if signed {
			wide := int64(int32(a)) * int64(int32(src))
			lo, hi = uint32(wide), uint32(wide>>32)
		} else {
			wide := uint64(a) * uint64(src)
			lo, hi = uint32(wide), uint32(wide>>32)
		}
		p.SetReg(x86.EAX, lo)
		p.SetReg(x86.EDX, hi)
		hiSig := hi != 0
		if signed {
			hiSig = int32(hi) != int32(lo)>>31
		}
		p.Flags = x86.MulFlags(p.Flags, lo, hiSig, 4)
	}
}

// div implements DIV/IDIV (32-bit form).
func (it *Interp) div(in x86.Inst) error {
	p := it.P
	if in.OpSize != 4 {
		return it.fault("8/16-bit divide not supported")
	}
	divisor := it.read(in.Src)
	if divisor == 0 {
		return it.fault("divide by zero")
	}
	num := uint64(p.Reg(x86.EDX))<<32 | uint64(p.Reg(x86.EAX))
	if in.Op == x86.IDIV {
		n := int64(num)
		d := int64(int32(divisor))
		q := n / d
		if q != int64(int32(q)) {
			return it.fault("idiv overflow")
		}
		p.SetReg(x86.EAX, uint32(q))
		p.SetReg(x86.EDX, uint32(n%d))
	} else {
		q := num / uint64(divisor)
		if q>>32 != 0 {
			return it.fault("div overflow")
		}
		p.SetReg(x86.EAX, uint32(q))
		p.SetReg(x86.EDX, uint32(num%uint64(divisor)))
	}
	return nil
}

// rotateCarry implements RCL/RCR: a rotate through CF over size*8+1 bits.
func (it *Interp) rotateCarry(in x86.Inst, size uint8, mask uint32) {
	p := it.P
	a := it.read(in.Dst)
	count := it.read(in.Src) & 31
	bits := uint32(size) * 8
	count %= bits + 1
	if count == 0 {
		return
	}
	cf := p.Flags & x86.FlagCF
	wide := uint64(a&mask) | uint64(cf)<<bits // size*8+1 bit value
	if in.Op == x86.RCL {
		wide = (wide<<count | wide>>(bits+1-count)) & (1<<(bits+1) - 1)
	} else {
		wide = (wide>>count | wide<<(bits+1-count)) & (1<<(bits+1) - 1)
	}
	r := uint32(wide) & mask
	newCF := uint32(wide>>bits) & 1
	f := p.Flags &^ (x86.FlagCF | x86.FlagOF)
	if newCF != 0 {
		f |= x86.FlagCF
	}
	// OF (canonical, the count==1 rule applied always): msb(result) XOR CF.
	if (r&x86.SignBit(size) != 0) != (newCF != 0) {
		f |= x86.FlagOF
	}
	p.Flags = f
	it.write(in.Dst, r)
}

// shiftDouble implements SHLD/SHRD.
func (it *Interp) shiftDouble(in x86.Inst, size uint8, mask uint32) {
	p := it.P
	dst := it.read(in.Dst)
	src := it.read(in.Src)
	count := it.read(in.Src2) & 31
	if count == 0 {
		return
	}
	bits := uint32(size) * 8
	if count >= bits {
		// Architecturally undefined for 16-bit; for 32-bit can't
		// happen (count&31 < 32). Canonical: operate modulo bits.
		count %= bits
		if count == 0 {
			return
		}
	}
	var r uint32
	if in.Op == x86.SHLD {
		r = (dst<<count | (src&mask)>>(bits-count)) & mask
		p.Flags = x86.ShlFlags(p.Flags, dst, count, size)
	} else {
		r = ((dst&mask)>>count | src<<(bits-count)) & mask
		p.Flags = x86.ShrFlags(p.Flags, dst, count, size)
	}
	// SZP reflect the double-shift result, not the single-shift one.
	p.Flags = x86.LogicFlags(p.Flags&^(x86.FlagCF|x86.FlagOF), r, size) |
		p.Flags&(x86.FlagCF|x86.FlagOF)
	it.write(in.Dst, r)
}

// bitTest implements BT/BTS/BTR/BTC, including the bit-string
// addressing form where a register bit offset indexes beyond the
// addressed word.
func (it *Interp) bitTest(in x86.Inst, size uint8) {
	p := it.P
	bits := uint32(size) * 8
	off := it.read(in.Src)
	var val uint32
	var addr uint32
	mem := in.Dst.Kind == x86.KMem
	if mem {
		addr = it.ea(in.Dst)
		if in.Src.Kind == x86.KReg {
			// Bit-string addressing: signed word displacement.
			addr += uint32(int32(off)>>5) * 4
			if size == 2 {
				addr = it.ea(in.Dst) + uint32(int32(off)>>4)*2
			}
		}
		if it.OnMem != nil {
			it.OnMem(addr, size, in.Op != x86.BT)
		}
		val = p.Mem.ReadN(addr, size)
	} else {
		val = p.RegSized(in.Dst.Reg, size)
	}
	bit := off % bits
	if mem && in.Src.Kind == x86.KReg {
		bit = off & (bits - 1)
	}
	m := uint32(1) << bit
	f := p.Flags &^ x86.FlagCF
	if val&m != 0 {
		f |= x86.FlagCF
	}
	p.Flags = f
	switch in.Op {
	case x86.BT:
		return
	case x86.BTS:
		val |= m
	case x86.BTR:
		val &^= m
	case x86.BTC:
		val ^= m
	}
	if mem {
		p.Mem.WriteN(addr, val, size)
		it.noteStore(addr, size)
	} else {
		p.SetRegSized(in.Dst.Reg, val, size)
	}
}

// bitScan implements BSF/BSR. A zero source sets ZF and leaves the
// destination unchanged (our canonical choice for the architecturally
// undefined case); otherwise ZF clears and the index is written. The
// other arithmetic flags are canonically cleared.
func (it *Interp) bitScan(in x86.Inst, size uint8) {
	p := it.P
	src := it.read(in.Src)
	f := p.Flags &^ x86.FlagsArith
	if src == 0 {
		p.Flags = f | x86.FlagZF
		return
	}
	p.Flags = f
	var idx uint32
	if in.Op == x86.BSF {
		for idx = 0; src&(1<<idx) == 0; idx++ {
		}
	} else {
		bits := uint32(size) * 8
		for idx = bits - 1; src&(1<<idx) == 0; idx-- {
		}
	}
	it.write(in.Dst, idx)
}

// stringOp implements MOVS/STOS/LODS/SCAS/CMPS with optional REP/REPNE.
func (it *Interp) stringOp(in x86.Inst) error {
	p := it.P
	w := in.OpSize
	var step uint32 = uint32(w)
	if p.Flags&x86.FlagDF != 0 {
		step = -step
	}
	one := func() {
		si, di := p.Reg(x86.ESI), p.Reg(x86.EDI)
		switch in.Op {
		case x86.MOVS:
			if it.OnMem != nil {
				it.OnMem(si, w, false)
				it.OnMem(di, w, true)
			}
			p.Mem.WriteN(di, p.Mem.ReadN(si, w), w)
			it.noteStore(di, w)
			p.SetReg(x86.ESI, si+step)
			p.SetReg(x86.EDI, di+step)
		case x86.STOS:
			if it.OnMem != nil {
				it.OnMem(di, w, true)
			}
			p.Mem.WriteN(di, p.RegSized(x86.EAX, w), w)
			it.noteStore(di, w)
			p.SetReg(x86.EDI, di+step)
		case x86.LODS:
			if it.OnMem != nil {
				it.OnMem(si, w, false)
			}
			p.SetRegSized(x86.EAX, p.Mem.ReadN(si, w), w)
			p.SetReg(x86.ESI, si+step)
		case x86.SCAS:
			if it.OnMem != nil {
				it.OnMem(di, w, false)
			}
			a := p.RegSized(x86.EAX, w)
			b := p.Mem.ReadN(di, w)
			p.Flags = x86.SubFlags(p.Flags, a, b, 0, w)
			p.SetReg(x86.EDI, di+step)
		case x86.CMPS:
			if it.OnMem != nil {
				it.OnMem(si, w, false)
				it.OnMem(di, w, false)
			}
			a := p.Mem.ReadN(si, w)
			b := p.Mem.ReadN(di, w)
			p.Flags = x86.SubFlags(p.Flags, a, b, 0, w)
			p.SetReg(x86.ESI, si+step)
			p.SetReg(x86.EDI, di+step)
		}
	}
	if !in.Rep {
		one()
		return nil
	}
	if in.Op == x86.LODS {
		return it.fault("REP LODS not supported")
	}
	conditional := in.Op == x86.SCAS || in.Op == x86.CMPS
	for p.Reg(x86.ECX) != 0 {
		one()
		p.SetReg(x86.ECX, p.Reg(x86.ECX)-1)
		if conditional {
			zf := p.Flags&x86.FlagZF != 0
			if in.RepNE && zf { // REPNE: stop when equal
				break
			}
			if !in.RepNE && !zf { // REPE: stop when unequal
				break
			}
		}
	}
	return nil
}

// Run executes until the process exits, a fault occurs, or maxSteps
// instructions retire (0 means no limit). It reports whether the
// process exited.
func (it *Interp) Run(maxSteps uint64) (bool, error) {
	for !it.P.Exited() {
		if maxSteps != 0 && it.Steps >= maxSteps {
			return false, nil
		}
		if err := it.Step(); err != nil {
			return false, err
		}
	}
	return true, nil
}
