package x86interp

import (
	"testing"

	"tilevm/internal/guest"
	"tilevm/internal/x86"
)

// run assembles a program, loads it, and runs it to exit.
func run(t *testing.T, build func(a *x86.Asm)) *guest.Process {
	t.Helper()
	a := x86.NewAsm(guest.DefaultCodeBase)
	build(a)
	img := &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: a.Bytes()}
	p := guest.Load(img)
	it := New(p)
	exited, err := it.Run(1_000_000)
	if err != nil {
		t.Fatalf("run: %v\nstate: %s", err, p.CPU.String())
	}
	if !exited {
		t.Fatalf("program did not exit; state: %s", p.CPU.String())
	}
	return p
}

// exit emits the Linux exit syscall with EBX as status.
func exit(a *x86.Asm) {
	a.MovRegImm(x86.EAX, 1)
	a.Int(0x80)
}

func TestExitCode(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		a.MovRegImm(x86.EBX, 42)
		exit(a)
	})
	if p.Kern.ExitCode != 42 {
		t.Errorf("exit code = %d, want 42", p.Kern.ExitCode)
	}
}

func TestArithmeticLoop(t *testing.T) {
	// sum 1..10 = 55
	p := run(t, func(a *x86.Asm) {
		a.MovRegImm(x86.EBX, 0)
		a.MovRegImm(x86.ECX, 10)
		a.Label("loop")
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.ECX, 4))
		a.DecReg(x86.ECX)
		a.Jcc(x86.CondNE, "loop")
		exit(a)
	})
	if p.Kern.ExitCode != 55 {
		t.Errorf("sum = %d, want 55", p.Kern.ExitCode)
	}
}

func TestFactorialWithCalls(t *testing.T) {
	// Recursive factorial(6) = 720 via call/ret and stack args.
	p := run(t, func(a *x86.Asm) {
		a.PushImm(6)
		a.Call("fact")
		a.ALU(x86.ADD, x86.RegOp(x86.ESP, 4), x86.ImmOp(4, 4))
		a.MovRegReg(x86.EBX, x86.EAX)
		exit(a)

		a.Label("fact")
		a.Push(x86.EBP)
		a.MovRegReg(x86.EBP, x86.ESP)
		a.MovRegMem(x86.EAX, x86.Mem(x86.EBP, 8))
		a.ALU(x86.CMP, x86.RegOp(x86.EAX, 4), x86.ImmOp(1, 4))
		a.Jcc(x86.CondLE, "base")
		a.DecReg(x86.EAX)
		a.Push(x86.EAX)
		a.Call("fact")
		a.ALU(x86.ADD, x86.RegOp(x86.ESP, 4), x86.ImmOp(4, 4))
		a.IMulRegRM(x86.EAX, x86.Mem(x86.EBP, 8))
		a.Jmp("done")
		a.Label("base")
		a.MovRegImm(x86.EAX, 1)
		a.Label("done")
		a.Pop(x86.EBP)
		a.Ret()
	})
	if p.Kern.ExitCode != 720 {
		t.Errorf("fact(6) = %d, want 720", p.Kern.ExitCode)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	// Store values to the heap, read them back with indexed addressing.
	p := run(t, func(a *x86.Asm) {
		base := uint32(guest.DefaultHeapBase)
		a.MovRegImm(x86.ESI, base)
		a.MovMemImm(x86.Mem(x86.ESI, 0), 100)
		a.MovMemImm(x86.Mem(x86.ESI, 4), 200)
		a.MovRegImm(x86.ECX, 1)
		a.MovRegMem(x86.EBX, x86.MemIdx(x86.ESI, x86.ECX, 4, 0)) // [esi+ecx*4] = 200
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.Mem(x86.ESI, 0))
		exit(a)
	})
	if p.Kern.ExitCode != 300 {
		t.Errorf("got %d, want 300", p.Kern.ExitCode)
	}
}

func TestByteOps(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		base := uint32(guest.DefaultHeapBase)
		a.MovRegImm(x86.ESI, base)
		a.MovRegImm(x86.EAX, 0x1ff) // AL = 0xff
		a.MovMemReg8(x86.Mem(x86.ESI, 0), x86.EAX)
		a.Movzx8(x86.EBX, x86.Mem(x86.ESI, 0)) // 0xff
		a.Movsx8(x86.ECX, x86.Mem(x86.ESI, 0)) // -1
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.ECX, 4))
		exit(a)
	})
	if p.Kern.ExitCode != 0xfe {
		t.Errorf("got %#x, want 0xfe", p.Kern.ExitCode)
	}
}

func TestConditionalsAndSetcc(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 7)
		a.MovRegImm(x86.EBX, 0)
		a.ALU(x86.CMP, x86.RegOp(x86.EAX, 4), x86.ImmOp(5, 4))
		a.Setcc(x86.CondG, x86.RegOp(x86.EBX, 1)) // BL = 1
		a.ALU(x86.CMP, x86.RegOp(x86.EAX, 4), x86.ImmOp(9, 4))
		a.Cmovcc(x86.CondL, x86.EBX, x86.RegOp(x86.EAX, 4)) // EBX = 7
		exit(a)
	})
	if p.Kern.ExitCode != 7 {
		t.Errorf("got %d, want 7", p.Kern.ExitCode)
	}
}

func TestShiftsAndRotates(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		a.MovRegImm(x86.EBX, 1)
		a.ShiftImm(x86.SHL, x86.RegOp(x86.EBX, 4), 5) // 32
		a.MovRegImm(x86.ECX, 2)
		a.ShiftCL(x86.SHR, x86.RegOp(x86.EBX, 4)) // 8
		a.MovRegImm(x86.EAX, 0x80000000)
		a.ShiftImm(x86.SAR, x86.RegOp(x86.EAX, 4), 31)               // -1
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.EAX, 4)) // 7
		a.MovRegImm(x86.EDX, 0x80000001)
		a.ShiftImm(x86.ROL, x86.RegOp(x86.EDX, 4), 1)                // 3
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.EDX, 4)) // 10
		exit(a)
	})
	if p.Kern.ExitCode != 10 {
		t.Errorf("got %d, want 10", p.Kern.ExitCode)
	}
}

func TestMulDiv(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 1000000)
		a.MovRegImm(x86.ECX, 5000)
		a.MulRM(x86.RegOp(x86.ECX, 4)) // EDX:EAX = 5e9
		a.MovRegImm(x86.ECX, 1000)
		a.DivRM(x86.RegOp(x86.ECX, 4)) // EAX = 5e6
		a.MovRegReg(x86.EBX, x86.EAX)
		a.MovRegImm(x86.EAX, 0)
		a.ALU(x86.SUB, x86.RegOp(x86.EAX, 4), x86.ImmOp(100, 4)) // -100
		a.Cdq()
		a.MovRegImm(x86.ECX, 7)
		a.IDivRM(x86.RegOp(x86.ECX, 4)) // -14 rem -2
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.RegOp(x86.EAX, 4))
		exit(a)
	})
	if p.Kern.ExitCode != 5000000-14 {
		t.Errorf("got %d, want %d", p.Kern.ExitCode, 5000000-14)
	}
}

func TestAdcSbbChain(t *testing.T) {
	// 64-bit add via ADC: 0xFFFFFFFF + 1 with carry into high word.
	p := run(t, func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0xffffffff)
		a.MovRegImm(x86.EDX, 0)
		a.ALU(x86.ADD, x86.RegOp(x86.EAX, 4), x86.ImmOp(1, 4))
		a.ALU(x86.ADC, x86.RegOp(x86.EDX, 4), x86.ImmOp(0, 4))
		a.MovRegReg(x86.EBX, x86.EDX)
		exit(a)
	})
	if p.Kern.ExitCode != 1 {
		t.Errorf("carry chain: got %d, want 1", p.Kern.ExitCode)
	}
}

func TestIndirectJumpTable(t *testing.T) {
	// Two-pass assembly: first pass with zero table entries to learn
	// the case label addresses, second pass with the real table.
	build := func(case0, case1 uint32) *x86.Asm {
		a := x86.NewAsm(guest.DefaultCodeBase)
		table := uint32(guest.DefaultHeapBase)
		a.MovRegImm(x86.ESI, table)
		a.MovMemImm(x86.Mem(x86.ESI, 0), case0)
		a.MovMemImm(x86.Mem(x86.ESI, 4), case1)
		a.MovRegImm(x86.EDX, 1)
		a.JmpMem(x86.MemIdx(x86.ESI, x86.EDX, 4, 0))
		a.Label("case0")
		a.MovRegImm(x86.EBX, 10)
		a.Jmp("out")
		a.Label("case1")
		a.MovRegImm(x86.EBX, 20)
		a.Label("out")
		exit(a)
		a.Bytes()
		return a
	}
	pass1 := build(0, 0)
	a := build(pass1.LabelAddr("case0"), pass1.LabelAddr("case1"))
	img := &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: a.Bytes()}
	p := guest.Load(img)
	exited, err := New(p).Run(10000)
	if err != nil || !exited {
		t.Fatalf("run: %v exited=%v", err, exited)
	}
	if p.Kern.ExitCode != 20 {
		t.Errorf("jump table picked %d, want 20", p.Kern.ExitCode)
	}
}

func TestIndirectJumpThroughRegister(t *testing.T) {
	// Simpler direct test: load a label address into a register by
	// assembling twice (first pass to learn the address).
	build := func(caseAddr uint32) []byte {
		a := x86.NewAsm(guest.DefaultCodeBase)
		a.MovRegImm(x86.EAX, caseAddr)
		a.JmpReg(x86.EAX)
		a.MovRegImm(x86.EBX, 1) // skipped
		a.Label("target")
		a.MovRegImm(x86.EBX, 99)
		a.MovRegImm(x86.EAX, 1)
		a.Int(0x80)
		code := a.Bytes()
		if caseAddr == 0 {
			return []byte{byte(a.LabelAddr("target")), byte(a.LabelAddr("target") >> 8),
				byte(a.LabelAddr("target") >> 16), byte(a.LabelAddr("target") >> 24)}
		}
		return code
	}
	addrBytes := build(0)
	addr := uint32(addrBytes[0]) | uint32(addrBytes[1])<<8 | uint32(addrBytes[2])<<16 | uint32(addrBytes[3])<<24
	code := build(addr)
	img := &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: code}
	p := guest.Load(img)
	exited, err := New(p).Run(10000)
	if err != nil || !exited {
		t.Fatalf("run: %v exited=%v", err, exited)
	}
	if p.Kern.ExitCode != 99 {
		t.Errorf("got %d, want 99", p.Kern.ExitCode)
	}
}

func TestStringOps(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		src := uint32(guest.DefaultHeapBase)
		dst := src + 0x1000
		// Fill 16 words at src with 0x11111111 via REP STOSD.
		a.Cld()
		a.MovRegImm(x86.EDI, src)
		a.MovRegImm(x86.EAX, 0x11111111)
		a.MovRegImm(x86.ECX, 16)
		a.RepStosd()
		// Copy to dst via REP MOVSD.
		a.MovRegImm(x86.ESI, src)
		a.MovRegImm(x86.EDI, dst)
		a.MovRegImm(x86.ECX, 16)
		a.RepMovsd()
		// Check one value.
		a.MovRegImm(x86.ESI, dst)
		a.MovRegMem(x86.EBX, x86.Mem(x86.ESI, 60))
		exit(a)
	})
	if uint32(p.Kern.ExitCode) != 0x11111111 {
		t.Errorf("got %#x, want 0x11111111", uint32(p.Kern.ExitCode))
	}
}

func TestWriteSyscall(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		msg := uint32(guest.DefaultHeapBase)
		a.MovRegImm(x86.ESI, msg)
		a.MovMemImm(x86.Mem(x86.ESI, 0), 0x6f6c6c68) // "hllo"... deliberately "hell"
		// Write "hell" properly: h=0x68 e=0x65 l=0x6c l=0x6c
		a.MovMemImm(x86.Mem(x86.ESI, 0), 0x6c6c6568)
		a.MovRegImm(x86.EAX, 4) // write
		a.MovRegImm(x86.EBX, 1) // stdout
		a.MovRegReg(x86.ECX, x86.ESI)
		a.MovRegImm(x86.EDX, 4)
		a.Int(0x80)
		a.MovRegImm(x86.EBX, 0)
		exit(a)
	})
	if got := p.Kern.Stdout.String(); got != "hell" {
		t.Errorf("stdout = %q, want %q", got, "hell")
	}
}

func TestBrkSyscall(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 45) // brk(0) → current break
		a.MovRegImm(x86.EBX, 0)
		a.Int(0x80)
		a.MovRegReg(x86.EBX, x86.EAX)
		a.ALU(x86.ADD, x86.RegOp(x86.EBX, 4), x86.ImmOp(0x1000, 4))
		a.MovRegImm(x86.EAX, 45) // brk(cur+0x1000)
		a.Int(0x80)
		// Store to the new memory and read back.
		a.MovRegReg(x86.ESI, x86.EAX)
		a.MovMemImm(x86.Mem(x86.ESI, -4), 77)
		a.MovRegMem(x86.EBX, x86.Mem(x86.ESI, -4))
		exit(a)
	})
	if p.Kern.ExitCode != 77 {
		t.Errorf("got %d, want 77", p.Kern.ExitCode)
	}
}

func TestFaults(t *testing.T) {
	// Divide by zero.
	a := x86.NewAsm(guest.DefaultCodeBase)
	a.MovRegImm(x86.EAX, 1)
	a.MovRegImm(x86.EDX, 0)
	a.MovRegImm(x86.ECX, 0)
	a.DivRM(x86.RegOp(x86.ECX, 4))
	img := &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: a.Bytes()}
	p := guest.Load(img)
	if _, err := New(p).Run(100); err == nil {
		t.Error("divide by zero did not fault")
	}
	// HLT.
	a = x86.NewAsm(guest.DefaultCodeBase)
	a.Hlt()
	img = &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: a.Bytes()}
	p = guest.Load(img)
	if _, err := New(p).Run(100); err == nil {
		t.Error("hlt did not fault")
	}
}

func TestOnMemHook(t *testing.T) {
	var reads, writes int
	a := x86.NewAsm(guest.DefaultCodeBase)
	a.MovRegImm(x86.ESI, guest.DefaultHeapBase)
	a.MovMemImm(x86.Mem(x86.ESI, 0), 5)
	a.MovRegMem(x86.EBX, x86.Mem(x86.ESI, 0))
	a.MovRegImm(x86.EAX, 1)
	a.Int(0x80)
	img := &guest.Image{Entry: guest.DefaultCodeBase, CodeBase: guest.DefaultCodeBase, Code: a.Bytes()}
	p := guest.Load(img)
	it := New(p)
	it.OnMem = func(addr uint32, size uint8, write bool) {
		if write {
			writes++
		} else {
			reads++
		}
	}
	if _, err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if writes != 1 || reads != 1 {
		t.Errorf("reads=%d writes=%d, want 1/1", reads, writes)
	}
}

func TestLeaveAndFrames(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		a.Call("f")
		a.MovRegReg(x86.EBX, x86.EAX)
		exit(a)
		a.Label("f")
		a.Push(x86.EBP)
		a.MovRegReg(x86.EBP, x86.ESP)
		a.ALU(x86.SUB, x86.RegOp(x86.ESP, 4), x86.ImmOp(16, 4))
		a.MovMemImm(x86.Mem(x86.EBP, -4), 31)
		a.MovRegMem(x86.EAX, x86.Mem(x86.EBP, -4))
		a.Leave()
		a.Ret()
	})
	if p.Kern.ExitCode != 31 {
		t.Errorf("got %d, want 31", p.Kern.ExitCode)
	}
}

func TestXchgAndBswap(t *testing.T) {
	p := run(t, func(a *x86.Asm) {
		a.MovRegImm(x86.EAX, 0x12345678)
		a.Bswap(x86.EAX)
		a.MovRegImm(x86.EBX, 0)
		a.Raw(0x93) // XCHG EAX, EBX
		exit(a)
	})
	if uint32(p.Kern.ExitCode) != 0x78563412 {
		t.Errorf("got %#x, want 0x78563412", uint32(p.Kern.ExitCode))
	}
}
